//! The kernel-equivalence battery: pluggable density kernels and time-decayed
//! windows must never perturb the streaming engine's bit-identity contract.
//!
//! Three anchors:
//!
//! * **Cutoff bit-identity** — an engine running the *generic weighted* ρ
//!   path with [`Kernel::Cutoff`] must stay bit-identical (ρ, δ, µ, labels,
//!   centres) to the cold batch pipeline — whose cutoff branch routes through
//!   the original integer-counting traversal — after every epoch, for every
//!   updatable index family, at threads {1, 4}, under all three commit
//!   policies. This is the proof that generalising `Rho` to weighted `f64`
//!   changed no observable bit of the paper-faithful configuration.
//! * **Weighted kernels vs the weight oracle** — under Gaussian and
//!   Exponential kernels the streamed ρ must equal an explicit accumulation
//!   oracle bit-for-bit (the oracle mirrors the engine's ±w(d) op order) and
//!   stay within 1e-9 of a cold pipeline run; the cold scan re-sums each
//!   neighbourhood from scratch, so f64 regrouping keeps it an epsilon — not
//!   bit — oracle for non-unit weights.
//! * **Decayed-window oracle** — with `decay` λ < 1 the engine's ρ must equal
//!   an *explicitly accumulated* weight table that mirrors the engine's
//!   arithmetic op-for-op (per-epoch `×λ` pre-pass, aged subtraction via
//!   [`aged_weight`], fresh ascending-id insertion sums), and δ/µ must equal
//!   a from-scratch re-rank of that table. A regression pins that a pure
//!   decay epoch ([`StreamingDpc::tick`]) re-ranks without issuing a single
//!   ε-query.

use dpc_baseline::LeanDpc;
use dpc_core::naive_reference::NaiveReferenceIndex;
use dpc_core::{
    CenterSelection, Dataset, DpcIndex, DpcParams, DpcPipeline, Kernel, Point, UpdatableIndex,
};
use dpc_datasets::testsupport::{lattice_point, test_points, TestDistribution};
use dpc_stream::{aged_weight, CommitPolicy, EpochMode, StreamParams, StreamingDpc};
use dpc_tree_index::{GridIndex, KdTree, KdTreeConfig, RTree, RTreeConfig};
use proptest::prelude::*;

const DC: f64 = 0.8;

/// One streamed operation on the coarse lattice (see `equivalence.rs`): an
/// eviction on an empty window becomes the insert, so every prefix runs.
#[derive(Debug, Clone, Copy)]
struct Op {
    insert: bool,
    point: Point,
    sel: u64,
}

type RawOp = (bool, u32, u32, u64);

fn lattice_ops(raw: &[RawOp]) -> Vec<Op> {
    raw.iter()
        .map(|&(insert, ix, iy, sel)| Op {
            insert,
            point: lattice_point(ix, iy),
            sel,
        })
        .collect()
}

fn lattice_seed(seed: &[(u32, u32)]) -> Vec<Point> {
    seed.iter().map(|&(x, y)| lattice_point(x, y)).collect()
}

fn seed_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..10, 0u32..10), 0..12)
}

fn ops_strategy() -> impl Strategy<Value = Vec<RawOp>> {
    prop::collection::vec((any::<bool>(), 0u32..10, 0u32..10, 0u64..10_000), 1..12)
}

fn kd_build(data: &Dataset) -> KdTree {
    KdTree::with_config(
        data,
        &KdTreeConfig {
            leaf_capacity: 3,
            ..Default::default()
        },
    )
}

fn rt_build(data: &Dataset) -> RTree {
    RTree::with_config(
        data,
        &RTreeConfig {
            node_capacity: 3,
            ..Default::default()
        },
    )
}

macro_rules! for_each_updatable_index {
    (|$name:ident, $build:ident| $body:expr) => {{
        {
            let $name = "naive";
            let $build = NaiveReferenceIndex::build;
            $body
        }
        {
            let $name = "lean";
            let $build = LeanDpc::build;
            $body
        }
        {
            let $name = "grid";
            let $build = GridIndex::build;
            $body
        }
        {
            let $name = "kdtree";
            let $build = kd_build;
            $body
        }
        {
            let $name = "rtree";
            let $build = rt_build;
            $body
        }
    }};
}

/// Replays `ops` as single-op epochs under `kernel`/`policy`/`threads` and
/// asserts, after every epoch, bit-identity of the full engine state against
/// a cold batch pipeline run (fresh index of the same kind, same kernel).
fn check_kernel_equivalence<I, F>(
    label: &str,
    build: F,
    kernel: Kernel,
    seed_points: &[Point],
    ops: &[Op],
    threads: usize,
    policy: CommitPolicy,
) -> Result<(), TestCaseError>
where
    I: UpdatableIndex,
    F: Fn(&Dataset) -> I,
{
    let dpc = DpcParams::new(DC)
        .with_centers(CenterSelection::GammaGap { max_centers: 8 })
        .with_kernel(kernel)
        .with_threads(threads);
    let params = StreamParams::new(DC)
        .with_dpc(dpc.clone())
        .with_policy(policy);
    let mut engine = StreamingDpc::new(build(&Dataset::new(seed_points.to_vec())), params)
        .map_err(|e| TestCaseError::fail(format!("[{label}] seeding failed: {e}")))?;

    for (step, op) in ops.iter().enumerate() {
        if op.insert || engine.is_empty() {
            engine.insert(op.point).map_err(|e| {
                TestCaseError::fail(format!("[{label}] step {step}: insert failed: {e}"))
            })?;
        } else {
            let live: Vec<_> = engine.live_handles().collect();
            let victim = live[op.sel as usize % live.len()];
            engine.remove(victim).map_err(|e| {
                TestCaseError::fail(format!("[{label}] step {step}: remove failed: {e}"))
            })?;
        }
        engine.index().check_invariants();
        if engine.is_empty() {
            continue;
        }
        let run = DpcPipeline::new(dpc.clone())
            .run(&build(engine.index().dataset()))
            .map_err(|e| {
                TestCaseError::fail(format!("[{label}] step {step}: batch run failed: {e}"))
            })?;
        prop_assert_eq!(
            engine.rho(),
            &run.rho[..],
            "[{}] {} rho diverged at step {}",
            label,
            kernel.name(),
            step
        );
        prop_assert_eq!(
            &engine.deltas().delta,
            &run.deltas.delta,
            "[{}] {} delta diverged at step {}",
            label,
            kernel.name(),
            step
        );
        prop_assert_eq!(
            &engine.deltas().mu,
            &run.deltas.mu,
            "[{}] {} mu diverged at step {}",
            label,
            kernel.name(),
            step
        );
        prop_assert_eq!(
            engine.clustering().centers(),
            run.clustering.centers(),
            "[{}] {} centres diverged at step {}",
            label,
            kernel.name(),
            step
        );
        prop_assert_eq!(
            engine.clustering().labels(),
            run.clustering.labels(),
            "[{}] {} labels diverged at step {}",
            label,
            kernel.name(),
            step
        );
    }
    Ok(())
}

/// Explicit weight-accumulation oracle for decayed windows. Mirrors the
/// engine's arithmetic op-for-op over dense ids — same swap-remove id churn,
/// same per-epoch `×λ` pre-pass, same [`aged_weight`] subtraction, same
/// ascending-id insertion sums — so the comparison is `assert_eq!` on f64
/// bits, not an epsilon.
struct DecayOracle {
    pts: Vec<Point>,
    births: Vec<u64>,
    rho: Vec<f64>,
    age: u64,
    lambda: f64,
    kernel: Kernel,
}

impl DecayOracle {
    fn new(seed: &[Point], lambda: f64, kernel: Kernel) -> Self {
        let pts = seed.to_vec();
        let n = pts.len();
        let mut rho = vec![0.0f64; n];
        let dc2 = DC * DC;
        // Seed densities: undecayed ascending-id sums, exactly like the
        // batch query that seeds the engine.
        for (i, r) in rho.iter_mut().enumerate() {
            let mut mass = 0.0f64;
            for (j, q) in pts.iter().enumerate() {
                if j == i {
                    continue;
                }
                let d2 = q.distance_squared(&pts[i]);
                if d2 < dc2 {
                    mass += kernel.weight_from_sq(d2);
                }
            }
            *r = mass;
        }
        DecayOracle {
            pts,
            births: vec![0; n],
            rho,
            age: 0,
            lambda,
            kernel,
        }
    }

    fn decay_all(&mut self) {
        if self.lambda != 1.0 {
            for r in &mut self.rho {
                *r *= self.lambda;
            }
        }
    }

    fn insert(&mut self, p: Point) {
        self.age += 1;
        self.decay_all();
        let dc2 = DC * DC;
        let mut mass = 0.0f64;
        for (q, other) in self.pts.iter().enumerate() {
            let d2 = other.distance_squared(&p);
            if d2 < dc2 {
                // Fresh pair: born now, enters undecayed in both directions.
                mass += self.kernel.weight_from_sq(d2);
                self.rho[q] += self.kernel.weight_from_sq(d2);
            }
        }
        self.pts.push(p);
        self.births.push(self.age);
        self.rho.push(mass);
    }

    fn remove(&mut self, loc: usize) {
        self.age += 1;
        let removed = self.pts.swap_remove(loc);
        let removed_birth = self.births.swap_remove(loc);
        self.rho.swap_remove(loc);
        self.decay_all();
        let dc2 = DC * DC;
        for (q, other) in self.pts.iter().enumerate() {
            let d2 = other.distance_squared(&removed);
            if d2 < dc2 {
                let pair_age = self.age - removed_birth.max(self.births[q]);
                self.rho[q] -= aged_weight(self.kernel, d2, self.lambda, pair_age);
            }
        }
    }

    fn tick(&mut self) {
        if self.lambda == 1.0 {
            return; // mirrors the engine: λ = 1 ticks are no-ops
        }
        self.age += 1;
        self.decay_all();
    }
}

fn lambda_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.5), Just(0.75), Just(0.9), Just(1.0)]
}

fn decay_kernel_strategy() -> impl Strategy<Value = Kernel> {
    prop_oneof![
        Just(Kernel::Cutoff),
        Just(Kernel::gaussian(0.7)),
        Just(Kernel::exponential(1.1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The generic weighted ρ path with `Kernel::Cutoff` is bit-identical to
    /// the integer-counting cold pipeline after every epoch, for all five
    /// engines, threads {1, 4}, and all three commit policies.
    #[test]
    fn cutoff_kernel_is_bit_identical_for_every_engine_thread_and_policy(
        seed in seed_strategy(),
        ops in ops_strategy()
    ) {
        let seed_points = lattice_seed(&seed);
        let ops = lattice_ops(&ops);
        for &policy in &[
            CommitPolicy::AlwaysIncremental,
            CommitPolicy::AlwaysRebuild,
            CommitPolicy::Adaptive,
        ] {
            for &threads in &[1usize, 4] {
                for_each_updatable_index!(|name, build| {
                    check_kernel_equivalence(
                        name, build, Kernel::Cutoff, &seed_points, &ops, threads, policy,
                    )?;
                });
            }
        }
    }

    /// Gaussian and Exponential streamed ρ equals the explicit
    /// weight-accumulation oracle **bit-for-bit** after every epoch, for all
    /// five engines at threads {1, 4}, and stays within 1e-9 (relative) of a
    /// cold pipeline run with the same kernel. Unlike cutoff's exact-1.0
    /// sums, incremental ±w(d) repair regroups f64 additions, so the cold
    /// scan — which re-sums each neighbourhood ascending from scratch — can
    /// differ in the last ulps; the oracle, which mirrors the engine's
    /// op order, is the bit-exact contract. (Rebuild-style policies coerce
    /// to incremental under weighted kernels; the cutoff battery covers
    /// them.)
    #[test]
    fn weighted_kernels_match_the_weight_oracle_and_cold_batch(
        seed in seed_strategy(),
        ops in ops_strategy(),
        bandwidth in 0.3f64..3.0
    ) {
        let seed_points = lattice_seed(&seed);
        let ops = lattice_ops(&ops);
        for kernel in [Kernel::gaussian(bandwidth), Kernel::exponential(bandwidth)] {
            for &threads in &[1usize, 4] {
                let dpc = DpcParams::new(DC)
                    .with_centers(CenterSelection::GammaGap { max_centers: 8 })
                    .with_kernel(kernel)
                    .with_threads(threads);
                let params = StreamParams::new(DC).with_dpc(dpc.clone());
                for_each_updatable_index!(|name, build| {
                    let mut engine = StreamingDpc::new(
                        build(&Dataset::new(seed_points.clone())),
                        params.clone(),
                    )
                    .map_err(|e| {
                        TestCaseError::fail(format!("[{name}] seeding failed: {e}"))
                    })?;
                    // λ = 1: the oracle reduces to undecayed ±w(d) repair.
                    let mut oracle = DecayOracle::new(&seed_points, 1.0, kernel);
                    for (step, op) in ops.iter().enumerate() {
                        if op.insert || engine.is_empty() {
                            engine.insert(op.point).map_err(|e| {
                                TestCaseError::fail(format!(
                                    "[{name}] step {step}: insert failed: {e}"
                                ))
                            })?;
                            oracle.insert(op.point);
                        } else {
                            let live: Vec<_> = engine.live_handles().collect();
                            let victim = live[op.sel as usize % live.len()];
                            let loc = engine.dense_of(victim).expect("live handle");
                            engine.remove(victim).map_err(|e| {
                                TestCaseError::fail(format!(
                                    "[{name}] step {step}: remove failed: {e}"
                                ))
                            })?;
                            oracle.remove(loc);
                        }
                        prop_assert_eq!(
                            engine.rho(),
                            &oracle.rho[..],
                            "[{}] {} rho diverged from the weight oracle at step {} \
                             (threads {})",
                            name,
                            kernel.name(),
                            step,
                            threads
                        );
                        if engine.is_empty() {
                            continue;
                        }
                        let run = DpcPipeline::new(dpc.clone())
                            .run(&build(engine.index().dataset()))
                            .map_err(|e| {
                                TestCaseError::fail(format!(
                                    "[{name}] step {step}: batch run failed: {e}"
                                ))
                            })?;
                        for (p, (&got, &want)) in
                            engine.rho().iter().zip(run.rho.iter()).enumerate()
                        {
                            prop_assert!(
                                (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                                "[{}] {} rho[{}] drifted from cold batch at step {}: \
                                 {} vs {}",
                                name, kernel.name(), p, step, got, want
                            );
                        }
                    }
                });
            }
        }
    }

    /// Decayed windows: after every epoch (mutations and pure-decay ticks
    /// alike) the engine's ρ equals the explicit weight-accumulation oracle
    /// bit-for-bit, and δ/µ equal a from-scratch re-rank of the oracle's
    /// table.
    #[test]
    fn decayed_stream_matches_explicit_weight_accumulation(
        seed in seed_strategy(),
        ops in ops_strategy(),
        lambda in lambda_strategy(),
        kernel in decay_kernel_strategy(),
        tick_every in 1usize..4
    ) {
        let seed_points = lattice_seed(&seed);
        let ops = lattice_ops(&ops);
        let dpc = DpcParams::new(DC)
            .with_centers(CenterSelection::GammaGap { max_centers: 8 })
            .with_kernel(kernel);
        let params = StreamParams::new(DC).with_dpc(dpc.clone()).with_decay(lambda);
        for_each_updatable_index!(|name, build| {
            let mut engine =
                StreamingDpc::new(build(&Dataset::new(seed_points.clone())), params.clone())
                    .map_err(|e| TestCaseError::fail(format!("[{name}] seeding failed: {e}")))?;
            let mut oracle = DecayOracle::new(&seed_points, lambda, kernel);
            prop_assert_eq!(engine.rho(), &oracle.rho[..], "[{}] seed rho", name);

            for (step, op) in ops.iter().enumerate() {
                if op.insert || engine.is_empty() {
                    engine.insert(op.point).map_err(|e| {
                        TestCaseError::fail(format!("[{name}] step {step}: insert failed: {e}"))
                    })?;
                    oracle.insert(op.point);
                } else {
                    let live: Vec<_> = engine.live_handles().collect();
                    let victim = live[op.sel as usize % live.len()];
                    let loc = engine.dense_of(victim).expect("live handle has a dense id");
                    engine.remove(victim).map_err(|e| {
                        TestCaseError::fail(format!("[{name}] step {step}: remove failed: {e}"))
                    })?;
                    oracle.remove(loc);
                }
                // Skip ticks on an empty window: the engine's tick is a
                // no-op there (no age bump), so the oracle must not age
                // either.
                if (step + 1) % tick_every == 0 && !engine.is_empty() {
                    engine.tick().map_err(|e| {
                        TestCaseError::fail(format!("[{name}] step {step}: tick failed: {e}"))
                    })?;
                    oracle.tick();
                }
                prop_assert_eq!(
                    engine.rho(),
                    &oracle.rho[..],
                    "[{}] rho diverged from the weight oracle at step {}",
                    name,
                    step
                );
                if engine.is_empty() {
                    continue;
                }
                // δ/µ re-rank of the oracle's table, via the reference index
                // (the δ-query is kernel- and decay-agnostic: it consumes ρ
                // only through the density order).
                let fresh = NaiveReferenceIndex::build(engine.index().dataset());
                let deltas = fresh.delta(DC, &oracle.rho).map_err(|e| {
                    TestCaseError::fail(format!("[{name}] step {step}: delta failed: {e}"))
                })?;
                prop_assert_eq!(
                    &engine.deltas().delta,
                    &deltas.delta,
                    "[{}] delta diverged at step {}",
                    name,
                    step
                );
                prop_assert_eq!(
                    &engine.deltas().mu,
                    &deltas.mu,
                    "[{}] mu diverged at step {}",
                    name,
                    step
                );
            }
        });
    }
}

/// Regression: a pure decay epoch (`tick`) rescales ρ bit-exactly, re-ranks
/// δ/µ, bumps only the decay counters — and issues **zero** ε-queries.
#[test]
fn decay_tick_reranks_without_eps_queries() {
    let seed = Dataset::new(test_points(TestDistribution::Clustered, 30, 17));
    let dpc = DpcParams::new(60.0)
        .with_centers(CenterSelection::GammaGap { max_centers: 8 })
        .with_kernel(Kernel::gaussian(40.0));
    let params = StreamParams::new(60.0).with_dpc(dpc).with_decay(0.5);
    let mut engine = StreamingDpc::new(NaiveReferenceIndex::build(&seed), params).unwrap();

    let rho_before = engine.rho().to_vec();
    let stats_before = engine.stats();
    let delta = engine.tick().unwrap();
    assert_eq!(delta.insertions(), 0);
    assert_eq!(delta.evictions(), 0);

    let stats = engine.stats();
    assert_eq!(
        stats.eps_queries, stats_before.eps_queries,
        "a pure decay epoch must not issue ε-queries"
    );
    assert_eq!(stats.decay_epochs, 1);
    assert_eq!(stats.incremental_epochs, stats_before.incremental_epochs);
    assert_eq!(stats.rebuild_epochs, stats_before.rebuild_epochs);
    assert_eq!(stats.fallback_epochs, stats_before.fallback_epochs);
    assert_eq!(stats.last_epoch_mode, Some(EpochMode::Decay));

    let expected: Vec<f64> = rho_before.iter().map(|r| r * 0.5).collect();
    assert_eq!(
        engine.rho(),
        &expected[..],
        "tick must rescale ρ bit-exactly"
    );

    // The re-rank really happened: δ/µ equal a fresh re-rank of the scaled ρ.
    let fresh = NaiveReferenceIndex::build(engine.index().dataset());
    let deltas = fresh.delta(60.0, &expected).unwrap();
    assert_eq!(&engine.deltas().delta, &deltas.delta);
    assert_eq!(&engine.deltas().mu, &deltas.mu);
}

/// A λ = 1 tick is a no-op: no epoch is recorded and the state is untouched.
#[test]
fn undecayed_tick_is_a_no_op() {
    let seed = Dataset::new(test_points(TestDistribution::Clustered, 12, 3));
    let params = StreamParams::new(60.0);
    let mut engine = StreamingDpc::new(NaiveReferenceIndex::build(&seed), params).unwrap();
    let rho_before = engine.rho().to_vec();
    let delta = engine.tick().unwrap();
    assert!(delta.is_empty());
    assert_eq!(engine.stats().decay_epochs, 0);
    assert_eq!(engine.stats().last_epoch_mode, None);
    assert_eq!(engine.rho(), &rho_before[..]);
}

/// A decayed *mutation* epoch always takes the full-re-rank fallback, even
/// when the affected set is tiny: λ-rescaling can collapse distinct f64
/// densities and flip id tie-breaks anywhere in the window.
#[test]
fn decayed_commit_epochs_always_rerank() {
    let seed = Dataset::new(test_points(TestDistribution::Clustered, 25, 9));
    let params = StreamParams::new(60.0).with_decay(0.9);
    let mut engine = StreamingDpc::new(NaiveReferenceIndex::build(&seed), params).unwrap();
    engine
        .insert(test_points(TestDistribution::Clustered, 1, 10)[0])
        .unwrap();
    assert_eq!(engine.stats().last_epoch_mode, Some(EpochMode::Fallback));
}

/// Rebuild-style commit policies coerce to the incremental path whenever the
/// epoch arithmetic is history-dependent (weighted kernel or λ < 1): a
/// rebuild recomputes from current geometry and would erase the decay
/// history. The coercion is observable in the stats, and the state still
/// matches the weight oracle (covered by the proptest above).
#[test]
fn rebuild_policies_coerce_to_incremental_under_decay_and_weighted_kernels() {
    let arrivals = test_points(TestDistribution::Clustered, 12, 23);
    for params in [
        StreamParams::new(60.0).with_decay(0.9),
        StreamParams::new(60.0).with_dpc(DpcParams::new(60.0).with_kernel(Kernel::gaussian(40.0))),
    ] {
        let seed = Dataset::new(test_points(TestDistribution::Clustered, 20, 22));
        let mut engine = StreamingDpc::new(
            NaiveReferenceIndex::build(&seed),
            params.with_policy(CommitPolicy::AlwaysRebuild),
        )
        .unwrap();
        for chunk in arrivals.chunks(4) {
            engine.advance(chunk, chunk.len()).unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.rebuild_epochs, 0, "rebuild must be gated off");
        assert_eq!(stats.epochs, 3);
    }
}

/// Parameter validation: decay factors outside (0, 1] and non-finite values
/// are rejected at construction with a quoted-value message, matching the
/// `validate_dc` style.
#[test]
fn decay_validation_rejects_out_of_range_values() {
    let seed = Dataset::new(test_points(TestDistribution::Clustered, 5, 1));
    for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
        let params = StreamParams::new(60.0).with_decay(bad);
        let err = StreamingDpc::new(NaiveReferenceIndex::build(&seed), params)
            .err()
            .unwrap_or_else(|| panic!("decay {bad} must be rejected"));
        let msg = err.to_string();
        assert!(
            msg.contains("decay"),
            "message must name the parameter: {msg}"
        );
        assert!(msg.contains("got"), "message must quote the value: {msg}");
    }
}

/// Kernel bandwidth validation surfaces through the streaming constructor
/// too — including the ~1.5e-154 squared-underflow guard shared with
/// `validate_dc`.
#[test]
fn kernel_validation_rejects_bad_bandwidths_at_construction() {
    let seed = Dataset::new(test_points(TestDistribution::Clustered, 5, 1));
    for bad in [
        Kernel::gaussian(0.0),
        Kernel::gaussian(-1.0),
        Kernel::gaussian(f64::NAN),
        Kernel::exponential(f64::INFINITY),
        Kernel::gaussian(1e-160), // bandwidth² underflows to 0
    ] {
        let params = StreamParams::new(60.0).with_dpc(DpcParams::new(60.0).with_kernel(bad));
        let err = StreamingDpc::new(NaiveReferenceIndex::build(&seed), params)
            .err()
            .unwrap_or_else(|| panic!("kernel {bad:?} must be rejected"));
        let msg = err.to_string();
        assert!(
            msg.contains("bandwidth"),
            "message must name the parameter: {msg}"
        );
        assert!(
            msg.contains("valid range"),
            "message must state the range: {msg}"
        );
    }
}
