//! Observability must be a pure side channel: attaching any recorder to a
//! [`StreamingDpc`] engine must never change `(ρ, δ, µ, labels)` — they stay
//! bit-identical to the default no-op run — and the default recorder must
//! actually be the shared no-op (the zero-overhead path).
//!
//! The proptest replays a random insert/evict sequence on two engines fed
//! the identical operations — one untouched (no-op recorder), one with a
//! metrics registry *and* a trace sink fanned out — and compares the full
//! state after every epoch. A structural test then pins down what the trace
//! contains: per-epoch spans with the phase spans nested inside, and policy
//! decision events carrying predicted/observed cost under the adaptive
//! policy.

use std::sync::Arc;

use dpc_core::{Point, UpdatableIndex};
use dpc_datasets::testsupport::lattice_point;
use dpc_obs::{Fanout, MetricsRecorder, SharedRecorder, TraceSink};
use dpc_stream::{CommitPolicy, StreamParams, StreamingDpc};
use dpc_tree_index::{KdTree, KdTreeConfig};
use proptest::prelude::*;

fn small_kdtree(points: Vec<Point>) -> KdTree {
    KdTree::with_config(
        &dpc_core::Dataset::new(points),
        &KdTreeConfig {
            leaf_capacity: 4,
            ..KdTreeConfig::default()
        },
    )
}

fn engine_with(
    seed: &[Point],
    policy: CommitPolicy,
    recorder: Option<SharedRecorder>,
) -> StreamingDpc<KdTree> {
    let params = StreamParams::new(1.5).with_policy(policy);
    let mut engine =
        StreamingDpc::new(small_kdtree(seed.to_vec()), params).expect("seeding must succeed");
    if let Some(rec) = recorder {
        engine.set_recorder(rec);
    }
    engine
}

/// Replays `ops` (insert when true, else evict-oldest) on `engine`.
fn replay(engine: &mut StreamingDpc<KdTree>, ops: &[(bool, u32, u32)]) {
    for &(insert, ix, iy) in ops {
        if insert || engine.is_empty() {
            engine
                .insert(lattice_point(ix, iy))
                .expect("insert must succeed");
        } else {
            let oldest = engine.oldest().expect("non-empty window has an oldest");
            engine.remove(oldest).expect("remove must succeed");
        }
    }
}

/// The full comparable state of an engine.
fn state_of(engine: &StreamingDpc<KdTree>) -> (Vec<f64>, Vec<f64>, Vec<Option<usize>>, Vec<usize>) {
    (
        engine.rho().to_vec(),
        engine.deltas().delta.clone(),
        engine.deltas().mu.clone(),
        engine.clustering().labels().to_vec(),
    )
}

#[test]
fn default_recorder_is_the_shared_noop() {
    let engine = engine_with(
        &[lattice_point(0, 0), lattice_point(5, 5)],
        CommitPolicy::default(),
        None,
    );
    assert!(
        !engine.recorder().enabled(),
        "the default recorder must be disabled"
    );
    assert!(
        Arc::ptr_eq(engine.recorder(), &dpc_obs::noop()),
        "the default recorder must be the shared no-op instance"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bit-identical ρ/δ/µ/labels with and without recording, on every
    /// commit policy, after every single epoch.
    #[test]
    fn recording_never_changes_results(
        seed in prop::collection::vec((0u32..8, 0u32..8), 2..12),
        ops in prop::collection::vec((any::<bool>(), 0u32..8, 0u32..8), 1..20),
        policy_sel in 0u8..3,
    ) {
        let policy = match policy_sel {
            0 => CommitPolicy::AlwaysIncremental,
            1 => CommitPolicy::AlwaysRebuild,
            _ => CommitPolicy::Adaptive,
        };
        let seed_points: Vec<Point> =
            seed.iter().map(|&(x, y)| lattice_point(x, y)).collect();

        let metrics = Arc::new(MetricsRecorder::new());
        let trace = Arc::new(TraceSink::new());
        let fanout: SharedRecorder = Arc::new(
            Fanout::new()
                .with(metrics.clone() as SharedRecorder)
                .with(trace.clone() as SharedRecorder),
        );

        let mut plain = engine_with(&seed_points, policy, None);
        let mut recorded = engine_with(&seed_points, policy, Some(fanout));

        for &(insert, ix, iy) in &ops {
            replay(&mut plain, &[(insert, ix, iy)]);
            replay(&mut recorded, &[(insert, ix, iy)]);
            prop_assert_eq!(
                state_of(&plain),
                state_of(&recorded),
                "state diverged after an epoch (policy {:?})",
                policy
            );
        }
        prop_assert_eq!(plain.epoch(), recorded.epoch());

        // The recorded run must actually have recorded something.
        let snap = metrics.snapshot();
        prop_assert_eq!(snap.counter("stream.epochs"), Some(ops.len() as u64));
        prop_assert!(trace.events().iter().any(|e| e.name == "stream.epoch"));
    }
}

#[test]
fn trace_contains_nested_phase_spans_and_policy_decisions() {
    let seed: Vec<Point> = (0..10).map(|i| lattice_point(i % 4, i / 4)).collect();
    let trace = Arc::new(TraceSink::new());
    let mut engine = engine_with(&seed, CommitPolicy::Adaptive, Some(trace.clone()));

    let ops: Vec<(bool, u32, u32)> = (0..12).map(|i| (i % 3 != 0, i % 5, i % 7)).collect();
    replay(&mut engine, &ops);

    let events = trace.events();
    let epochs: Vec<_> = events
        .iter()
        .filter(|e| e.ph == 'X' && e.name == "stream.epoch")
        .collect();
    assert_eq!(
        epochs.len(),
        ops.len(),
        "one epoch span per committed epoch"
    );

    // Every phase span must be contained in some epoch span.
    for phase in events
        .iter()
        .filter(|e| e.ph == 'X' && e.name.starts_with("stream.phase."))
    {
        let (ts, dur) = (phase.ts_us, phase.dur_us.expect("complete event"));
        assert!(
            epochs
                .iter()
                .any(|ep| ep.ts_us <= ts && ts + dur <= ep.ts_us + ep.dur_us.unwrap()),
            "phase span {} at {ts} must nest inside an epoch span",
            phase.name
        );
    }
    // Each epoch has a validate and a recluster phase at minimum.
    assert!(
        events
            .iter()
            .filter(|e| e.name == "stream.phase.validate")
            .count()
            >= ops.len()
    );
    assert!(
        events
            .iter()
            .filter(|e| e.name == "stream.phase.recluster")
            .count()
            >= ops.len()
    );

    // Adaptive policy: one decision instant per epoch, carrying the
    // predicted and observed cost.
    let decisions: Vec<_> = events
        .iter()
        .filter(|e| e.ph == 'i' && e.name == "stream.policy.decision")
        .collect();
    assert_eq!(decisions.len(), ops.len());
    for d in &decisions {
        let keys: Vec<&str> = d.args.iter().map(|(k, _)| k.as_str()).collect();
        for required in [
            "mode",
            "predicted_incremental_us",
            "predicted_rebuild_us",
            "predicted_us",
            "observed_us",
        ] {
            assert!(keys.contains(&required), "decision missing {required}");
        }
    }

    // The export is well-formed Chrome trace JSON at the structural level.
    let json = trace.to_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn maintenance_counters_surface_as_gauges() {
    let seed: Vec<Point> = (0..8).map(|i| lattice_point(i, i)).collect();
    let metrics = Arc::new(MetricsRecorder::new());
    let mut engine = engine_with(
        &seed,
        CommitPolicy::AlwaysIncremental,
        Some(metrics.clone() as SharedRecorder),
    );
    let ops: Vec<(bool, u32, u32)> = (0..30).map(|i| (i % 2 == 0, i % 6, (i * 3) % 6)).collect();
    replay(&mut engine, &ops);

    let snap = metrics.snapshot();
    // Every maintenance counter the index reports must be visible as an
    // `index.kdtree.<counter>` gauge with the index's current value.
    for (name, value) in engine.index().maintenance_counters() {
        assert_eq!(
            snap.gauge(&format!("index.kdtree.{name}")),
            Some(value as f64),
            "gauge for maintenance counter {name}"
        );
    }
    assert_eq!(snap.counter("stream.epochs"), Some(ops.len() as u64));
    assert!(snap.histogram("stream.epoch.maintenance_us").is_some());
    assert!(snap.histogram("stream.phase.validate_us").is_some());
}
