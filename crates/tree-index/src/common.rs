//! The [`SpatialPartition`] abstraction shared by every tree index.
//!
//! All four index structures in this crate (quadtree, R-tree, k-d tree,
//! uniform grid) are hierarchies of nodes, each covering an axis-aligned
//! region that bounds the points stored beneath it. The two DPC query
//! algorithms only need that much structure, so they are written once against
//! this trait (see [`crate::query`]) and each index only implements
//! construction plus these accessors.

use dpc_core::BoundingBox;
use dpc_core::PointId;

/// Identifier of a node inside a [`SpatialPartition`] (an index into the
/// implementation's node arena).
pub type NodeId = usize;

/// A hierarchical partition of 2-D space over a dataset.
///
/// Invariants every implementation must uphold (they are checked by the
/// `partition_invariants` test helper in this module and exercised by each
/// index's tests):
///
/// * every node's [`bbox`](SpatialPartition::bbox) contains the points of all
///   leaves below it;
/// * [`point_count`](SpatialPartition::point_count) of a node equals the
///   number of dataset points stored in the leaves of its subtree (`nc` in
///   the paper);
/// * a node is either a leaf (no children, possibly some points) or an
///   internal node (children, no directly stored points);
/// * every dataset point appears in exactly one leaf.
pub trait SpatialPartition {
    /// The root node, or `None` for an empty index.
    fn root(&self) -> Option<NodeId>;

    /// The region covered by a node.
    fn bbox(&self, node: NodeId) -> BoundingBox;

    /// Number of dataset points stored in the subtree of `node` (`nc`).
    fn point_count(&self, node: NodeId) -> usize;

    /// Child nodes (empty slice for a leaf).
    fn children(&self, node: NodeId) -> &[NodeId];

    /// Point ids stored directly in `node` (non-empty only for leaves).
    fn points(&self, node: NodeId) -> &[u32];

    /// Whether the node is a leaf.
    fn is_leaf(&self, node: NodeId) -> bool {
        self.children(node).is_empty()
    }

    /// Total number of nodes in the index.
    fn num_nodes(&self) -> usize;

    /// Height of the tree (number of levels; 0 for an empty index). The
    /// default implementation walks the structure.
    fn height(&self) -> usize {
        fn depth<T: SpatialPartition + ?Sized>(tree: &T, node: NodeId) -> usize {
            1 + tree
                .children(node)
                .iter()
                .map(|&c| depth(tree, c))
                .max()
                .unwrap_or(0)
        }
        self.root().map_or(0, |r| depth(self, r))
    }
}

/// Checks the structural invariants of a partition against its dataset.
/// Intended for tests; panics with a descriptive message on violation.
pub fn check_partition_invariants<T: SpatialPartition + ?Sized>(
    tree: &T,
    dataset: &dpc_core::Dataset,
) {
    let Some(root) = tree.root() else {
        assert_eq!(dataset.len(), 0, "non-empty dataset but empty partition");
        return;
    };
    let mut seen = vec![false; dataset.len()];
    let mut stack = vec![root];
    let mut reachable_nodes = 0usize;
    while let Some(node) = stack.pop() {
        reachable_nodes += 1;
        let bbox = tree.bbox(node);
        let children = tree.children(node);
        let points = tree.points(node);
        if !children.is_empty() {
            assert!(
                points.is_empty(),
                "internal node {node} stores points directly"
            );
            let child_count: usize = children.iter().map(|&c| tree.point_count(c)).sum();
            assert_eq!(
                child_count,
                tree.point_count(node),
                "node {node}: nc does not equal the sum of its children's nc"
            );
            for &c in children {
                assert!(
                    bbox.contains_box(&tree.bbox(c)) || tree.point_count(c) == 0,
                    "child {c} of node {node} is not contained in its parent's bbox"
                );
                stack.push(c);
            }
        } else {
            assert_eq!(
                points.len(),
                tree.point_count(node),
                "leaf {node}: nc does not match the stored point count"
            );
            for &p in points {
                let p = p as PointId;
                assert!(!seen[p], "point {p} appears in more than one leaf");
                seen[p] = true;
                assert!(
                    bbox.contains(dataset.point(p)),
                    "point {p} lies outside the bbox of its leaf {node}"
                );
            }
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "some dataset points are not stored in any leaf"
    );
    assert!(
        reachable_nodes <= tree.num_nodes(),
        "more reachable nodes than num_nodes() reports"
    );
    let root_count = tree.point_count(root);
    assert_eq!(
        root_count,
        dataset.len(),
        "root nc must equal the dataset size"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::FlatPartition;
    use dpc_core::{Dataset, Point};

    fn sample() -> Dataset {
        Dataset::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.5, 0.5),
            Point::new(4.0, 2.0),
            Point::new(4.5, 0.1),
        ])
    }

    #[test]
    fn flat_partition_satisfies_invariants() {
        let data = sample();
        let part = FlatPartition::strips(&data, 1.5);
        check_partition_invariants(&part, &data);
        assert!(part.height() == 2);
        assert!(part.num_nodes() >= 2);
    }

    #[test]
    fn empty_partition_is_consistent() {
        let data = Dataset::new(vec![]);
        let part = FlatPartition::strips(&data, 1.0);
        check_partition_invariants(&part, &data);
        assert_eq!(part.height(), 0);
    }

    #[test]
    #[should_panic(expected = "nc does not equal")]
    fn invariant_checker_detects_wrong_counts() {
        let data = sample();
        let mut part = FlatPartition::strips(&data, 1.5);
        part.total = 99; // corrupt the root count
        check_partition_invariants(&part, &data);
    }
}
