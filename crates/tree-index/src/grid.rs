//! A uniform grid index (extension; related-work style ablation).
//!
//! The related work the paper cites (\[22\], \[24\]) accelerates DPC with grid
//! structures. This module provides a flat uniform grid exposed as a
//! two-level [`SpatialPartition`] (a root whose children are the non-empty
//! cells), so the same pruned query algorithms apply. It serves as an
//! ablation point between "no index" and the hierarchical indices: cheap to
//! build, but with far weaker pruning on skewed data.

use std::collections::HashMap;
use std::time::Duration;

use dpc_core::index::{validate_dc, validate_rho_len};
use dpc_core::{
    BoundingBox, Dataset, DeltaResult, DensityOrder, DpcIndex, ExecPolicy, IndexStats, Kernel,
    Point, PointId, Result, Rho, TieBreak, Timer, UpdatableIndex,
};

use crate::common::{check_partition_invariants, NodeId, SpatialPartition};
use crate::query::{
    delta_query_with_policy, rho_delta_query_recorded, rho_query_with_policy, subtree_max_density,
    weighted_rho_query_with_policy, DeltaQueryConfig, QueryStats,
};

/// Configuration of a [`GridIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridConfig {
    /// Side length of a grid cell. `None` chooses a size targeting
    /// [`GridConfig::target_points_per_cell`] points per cell on average.
    pub cell_size: Option<f64>,
    /// Average cell occupancy targeted when `cell_size` is `None`.
    pub target_points_per_cell: usize,
    /// Occupancy-skew factor that triggers an amortised re-bucket when the
    /// cell size is auto-chosen: an insert that leaves its cell holding more
    /// than `rebucket_skew * target_points_per_cell` points re-derives the
    /// grid geometry (origin and cell size) from the *current* window.
    /// Without this, a long-lived stream that drifts off the build-time
    /// region degrades to a few huge cells. `f64::INFINITY` disables
    /// re-bucketing; explicit `cell_size` grids never re-bucket (a fixed
    /// geometry cannot adapt). Must be greater than 1.
    pub rebucket_skew: f64,
    /// Tie-break rule of the density order.
    pub tie_break: TieBreak,
    /// Pruning configuration used by the δ-query of the [`DpcIndex`] impl.
    pub delta: DeltaQueryConfig,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            cell_size: None,
            target_points_per_cell: 32,
            rebucket_skew: 8.0,
            tie_break: TieBreak::default(),
            delta: DeltaQueryConfig::default(),
        }
    }
}

/// The uniform grid index.
///
/// Besides the batch queries of [`DpcIndex`], the grid supports online
/// updates ([`UpdatableIndex`]): a point insert/delete touches exactly one
/// cell (found in O(1) through the key map), which makes the grid the
/// natural index for the streaming engine in `dpc-stream`. The grid geometry
/// (origin and cell size) is anchored at build time; points inserted outside
/// the original bounding box simply land in new cells with negative or
/// larger keys. When the auto-sized geometry stops fitting the data — a
/// drifting stream piles points into one build-time cell — an insert that
/// pushes a cell past [`GridConfig::rebucket_skew`] times the target
/// occupancy re-anchors the grid from the current window (an amortised
/// re-bucket, counted in [`UpdatableIndex::maintenance_counters`]). The
/// partition only affects pruning, so re-bucketing never changes query
/// results. After deletions, cell bounding boxes are *conservative* (they
/// may be larger than tight) — query results are unaffected, only pruning is
/// marginally weaker.
#[derive(Debug, Clone)]
pub struct GridIndex {
    dataset: Dataset,
    /// Bounding box of each cell (index 0 is the root). Tight after
    /// construction and insertion, conservative after removals.
    boxes: Vec<BoundingBox>,
    /// Point ids of each cell (index 0, the root, stays empty).
    members: Vec<Vec<u32>>,
    /// Children of the root: ids 1..num_nodes. Cells emptied by removals
    /// stay listed (with a zero point count).
    root_children: Vec<NodeId>,
    /// Cell key (integer grid coordinates relative to `origin`) → node id.
    cell_of: HashMap<(i64, i64), NodeId>,
    /// Anchor of the cell key computation, frozen at build time.
    origin: (f64, f64),
    cell_size: f64,
    config: GridConfig,
    construction_time: Duration,
    /// Number of occupancy-triggered re-anchors performed so far. Carried
    /// across [`UpdatableIndex::rebuild_from`].
    rebuckets: u64,
    /// Dataset version at the last re-anchor (or build). A re-bucket is
    /// allowed only after at least a threshold's worth of mutations, so the
    /// O(n) rebuild amortises against the inserts that overfilled the cell
    /// (degenerate data — e.g. thousands of coincident points — cannot force
    /// a rebuild per insert).
    last_rebucket_version: u64,
}

impl GridIndex {
    /// Builds a grid index with the default configuration.
    pub fn build(dataset: &Dataset) -> Self {
        Self::with_config(dataset, &GridConfig::default())
    }

    /// Builds a grid index with an explicit configuration.
    ///
    /// # Panics
    /// Panics if an explicit `cell_size` is not positive and finite, if
    /// `target_points_per_cell` is 0, or if `rebucket_skew` is not greater
    /// than 1.
    pub fn with_config(dataset: &Dataset, config: &GridConfig) -> Self {
        assert!(
            config.target_points_per_cell > 0,
            "GridIndex: target points per cell must be positive"
        );
        assert!(
            config.rebucket_skew > 1.0,
            "GridIndex: rebucket skew must be greater than 1, got {}",
            config.rebucket_skew
        );
        if let Some(s) = config.cell_size {
            assert!(
                s.is_finite() && s > 0.0,
                "GridIndex: cell size must be positive, got {s}"
            );
        }
        let timer = Timer::start();
        let n = dataset.len();
        let bb = dataset.bounding_box();
        let mut cell_size = config.cell_size.unwrap_or_else(|| {
            // Aim for ~target_points_per_cell points per cell on average,
            // assuming a uniform spread over the bounding box.
            let cells = (n as f64 / config.target_points_per_cell as f64).max(1.0);
            let per_axis = cells.sqrt().ceil().max(1.0);
            let extent = bb.width().max(bb.height()).max(f64::MIN_POSITIVE);
            extent / per_axis
        });
        if !(cell_size.is_finite() && cell_size > 0.0) {
            // Empty dataset: the bounding box is the inverted EMPTY box and
            // the auto formula degenerates. Any positive size works — the
            // grid has no cells yet and later inserts key off `origin`.
            cell_size = 1.0;
        }
        // Freeze the key anchor; an empty dataset anchors at the origin so
        // the grid stays updatable.
        let origin = if bb.is_empty() {
            (0.0, 0.0)
        } else {
            (bb.min_x(), bb.min_y())
        };

        let mut cells: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for (id, p) in dataset.iter() {
            cells
                .entry(cell_key(p, origin, cell_size))
                .or_default()
                .push(id as u32);
        }
        // Deterministic node order regardless of hash iteration order.
        let mut keys: Vec<(i64, i64)> = cells.keys().copied().collect();
        keys.sort_unstable();

        let mut boxes = vec![bb];
        let mut members: Vec<Vec<u32>> = vec![Vec::new()];
        let mut cell_of = HashMap::with_capacity(keys.len());
        for key in keys {
            let ids = cells.remove(&key).expect("cell key must exist");
            let tight = ids.iter().fold(BoundingBox::EMPTY, |acc, &id| {
                acc.extended(dataset.point(id as PointId))
            });
            cell_of.insert(key, boxes.len());
            boxes.push(tight);
            members.push(ids);
        }
        let root_children: Vec<NodeId> = (1..boxes.len()).collect();

        GridIndex {
            dataset: dataset.clone(),
            boxes,
            members,
            root_children,
            cell_of,
            origin,
            cell_size,
            config: *config,
            construction_time: timer.elapsed(),
            rebuckets: 0,
            last_rebucket_version: dataset.version(),
        }
    }

    /// Re-derives the grid geometry (origin, cell size, partition) from the
    /// current window, preserving the dataset and the re-bucket count. Called
    /// when occupancy skew shows the anchored geometry no longer fits.
    fn rebucket(&mut self) {
        let rebuckets = self.rebuckets + 1;
        let config = self.config;
        let dataset = std::mem::replace(&mut self.dataset, Dataset::new(Vec::new()));
        *self = GridIndex::with_config(&dataset, &config);
        self.rebuckets = rebuckets;
    }

    /// The insert-time occupancy threshold above which a re-bucket fires,
    /// or `None` when re-bucketing is disabled (explicit cell size or an
    /// infinite skew).
    fn rebucket_threshold(&self) -> Option<usize> {
        if self.config.cell_size.is_some() || !self.config.rebucket_skew.is_finite() {
            return None;
        }
        let raw = self.config.rebucket_skew * self.config.target_points_per_cell as f64;
        Some(raw.ceil() as usize)
    }

    /// The side length of a grid cell.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// The integer cell key of a location.
    fn key_of(&self, p: Point) -> (i64, i64) {
        cell_key(p, self.origin, self.cell_size)
    }

    /// The node id of the cell holding `p`'s location, if that cell exists.
    fn cell_node(&self, p: Point) -> Option<NodeId> {
        self.cell_of.get(&self.key_of(p)).copied()
    }

    /// Number of materialised cells. Every cell was non-empty when created
    /// (at build time or by an insert), but cells whose points were all
    /// removed stay listed with a zero point count, so after deletions this
    /// is an upper bound on the number of occupied cells.
    pub fn cell_count(&self) -> usize {
        self.root_children.len()
    }

    /// ρ-query that also reports traversal statistics.
    pub fn rho_with_stats(&self, dc: f64) -> Result<(Vec<Rho>, QueryStats)> {
        self.rho_with_stats_policy(dc, ExecPolicy::Sequential)
    }

    /// [`rho_with_stats`](Self::rho_with_stats) under an explicit execution
    /// policy (bit-identical results at every thread count).
    pub fn rho_with_stats_policy(
        &self,
        dc: f64,
        policy: ExecPolicy,
    ) -> Result<(Vec<Rho>, QueryStats)> {
        validate_dc(dc)?;
        Ok(rho_query_with_policy(self, &self.dataset, dc, policy))
    }

    /// Checks the grid's structural bookkeeping: the generic partition
    /// invariants plus the cell-key map (every listed point keys to the cell
    /// listing it).
    ///
    /// # Panics
    /// Panics with a descriptive message on the first violation.
    pub fn check_structure(&self) {
        check_partition_invariants(self, &self.dataset);
        for (&key, &node) in &self.cell_of {
            for &q in &self.members[node] {
                assert_eq!(
                    self.key_of(self.dataset.point(q as PointId)),
                    key,
                    "point {q} is listed in cell {key:?} but keys elsewhere"
                );
            }
        }
    }

    /// δ-query with an explicit pruning configuration, reporting traversal
    /// statistics.
    pub fn delta_with_config(
        &self,
        dc: f64,
        rho: &[Rho],
        config: &DeltaQueryConfig,
    ) -> Result<(DeltaResult, QueryStats)> {
        self.delta_with_config_policy(dc, rho, config, ExecPolicy::Sequential)
    }

    /// [`delta_with_config`](Self::delta_with_config) under an explicit
    /// execution policy.
    pub fn delta_with_config_policy(
        &self,
        dc: f64,
        rho: &[Rho],
        config: &DeltaQueryConfig,
        policy: ExecPolicy,
    ) -> Result<(DeltaResult, QueryStats)> {
        validate_dc(dc)?;
        validate_rho_len(rho, self.dataset.len())?;
        let order = DensityOrder::with_tie_break(rho, self.config.tie_break);
        let maxrho = subtree_max_density(self, rho);
        Ok(delta_query_with_policy(
            self,
            &self.dataset,
            &order,
            &maxrho,
            config,
            policy,
        ))
    }
}

/// Integer grid coordinates of a point relative to `origin`. The f64→i64
/// cast saturates, so degenerate geometries (e.g. a subnormal cell size)
/// deterministically collapse far-away points into boundary cells instead of
/// overflowing.
fn cell_key(p: Point, origin: (f64, f64), cell_size: f64) -> (i64, i64) {
    (
        ((p.x - origin.0) / cell_size).floor() as i64,
        ((p.y - origin.1) / cell_size).floor() as i64,
    )
}

impl UpdatableIndex for GridIndex {
    fn insert(&mut self, p: Point) -> Result<PointId> {
        let id = self.dataset.push(p)?;
        match self.cell_node(p) {
            Some(node) => {
                self.members[node].push(id as u32);
                self.boxes[node] = self.boxes[node].extended(p);
            }
            None => {
                let node = self.boxes.len();
                self.cell_of.insert(self.key_of(p), node);
                self.boxes.push(BoundingBox::from_point(p));
                self.members.push(vec![id as u32]);
                self.root_children.push(node);
            }
        }
        // The root box must keep covering every point (inserts may fall
        // outside the build-time bounding box).
        self.boxes[0] = self.boxes[0].extended(p);
        if let Some(threshold) = self.rebucket_threshold() {
            let node = self.cell_node(p).expect("inserted point must have a cell");
            if self.members[node].len() > threshold
                && self.dataset.version() >= self.last_rebucket_version + threshold as u64
            {
                self.rebucket();
            }
        }
        Ok(id)
    }

    fn remove(&mut self, id: PointId) -> Result<Option<PointId>> {
        let n = self.dataset.len();
        if id >= n {
            return Err(dpc_core::DpcError::invalid_parameter(
                "id",
                format!("GridIndex::remove: point id {id} is out of range (n = {n})"),
            ));
        }
        let removed_pt = self.dataset.point(id);
        let moved_pt = self.dataset.point(n - 1);
        let moved = self.dataset.swap_remove(id)?;

        let node = self
            .cell_node(removed_pt)
            .expect("GridIndex: removed point must have a cell");
        let pos = self.members[node]
            .iter()
            .position(|&q| q as PointId == id)
            .expect("GridIndex: removed point must be listed in its cell");
        self.members[node].swap_remove(pos);

        if let Some(m) = moved {
            // The dataset renamed its last point to `id`; mirror that in the
            // moved point's cell.
            let mnode = self
                .cell_node(moved_pt)
                .expect("GridIndex: moved point must have a cell");
            let mpos = self.members[mnode]
                .iter()
                .position(|&q| q as PointId == m)
                .expect("GridIndex: moved point must be listed in its cell");
            self.members[mnode][mpos] = id as u32;
        }
        // Cell and root boxes are left as-is: conservative (possibly larger
        // than tight) boxes only weaken pruning, never correctness.
        Ok(moved)
    }

    fn rebuild_from(&mut self, dataset: Dataset) -> Result<()> {
        // Bulk load: re-derive the cell partition for the new window in one
        // build (re-picking the cell size for its bounding box and density)
        // instead of paying per-point cell maintenance. The adopted dataset
        // keeps the caller's id order and version history.
        let config = self.config;
        let rebuckets = self.rebuckets;
        *self = GridIndex::with_config(&dataset, &config);
        self.rebuckets = rebuckets;
        Ok(())
    }

    fn eps_neighbors(&self, center: Point, eps: f64) -> Result<Vec<PointId>> {
        validate_dc(eps)?;
        let mut out = Vec::new();
        if self.dataset.is_empty() {
            return Ok(out);
        }
        let eps2 = eps * eps;
        // The rectangle bounds are computed in rounded f64 arithmetic:
        // fl(center - eps) can round *up* across a cell boundary and
        // fl(center + eps) can round *down*, either of which would exclude
        // the cell of a point strictly within eps. Widening by one cell on
        // every side makes the rectangle a guaranteed superset; the exact
        // strict `< eps²` test below keeps the result tight.
        let (kx0, ky0) = self.key_of(Point::new(center.x - eps, center.y - eps));
        let (kx1, ky1) = self.key_of(Point::new(center.x + eps, center.y + eps));
        let (kx0, ky0) = (kx0.saturating_sub(1), ky0.saturating_sub(1));
        let (kx1, ky1) = (kx1.saturating_add(1), ky1.saturating_add(1));
        let scan_cell = |node: NodeId, out: &mut Vec<PointId>| {
            for &q in &self.members[node] {
                let q = q as PointId;
                if self.dataset.point(q).distance_squared(&center) < eps2 {
                    out.push(q);
                }
            }
        };
        // Enumerate the key rectangle when it is small; a huge eps relative
        // to the cell size would make that rectangle astronomically large,
        // in which case walking the existing cells is cheaper.
        let span = ((kx1 as i128 - kx0 as i128 + 1) as u128)
            .saturating_mul((ky1 as i128 - ky0 as i128 + 1) as u128);
        if span <= self.cell_of.len() as u128 {
            for kx in kx0..=kx1 {
                for ky in ky0..=ky1 {
                    if let Some(&node) = self.cell_of.get(&(kx, ky)) {
                        scan_cell(node, &mut out);
                    }
                }
            }
        } else {
            for (&(kx, ky), &node) in &self.cell_of {
                if (kx0..=kx1).contains(&kx) && (ky0..=ky1).contains(&ky) {
                    scan_cell(node, &mut out);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn maintenance_counters(&self) -> Vec<(&'static str, u64)> {
        vec![("rebuckets", self.rebuckets)]
    }

    fn check_invariants(&self) {
        self.check_structure();
    }
}

impl SpatialPartition for GridIndex {
    fn root(&self) -> Option<NodeId> {
        if self.dataset.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn bbox(&self, node: NodeId) -> BoundingBox {
        self.boxes[node]
    }

    fn point_count(&self, node: NodeId) -> usize {
        if node == 0 {
            self.dataset.len()
        } else {
            self.members[node].len()
        }
    }

    fn children(&self, node: NodeId) -> &[NodeId] {
        if node == 0 {
            &self.root_children
        } else {
            &[]
        }
    }

    fn points(&self, node: NodeId) -> &[u32] {
        if node == 0 {
            &[]
        } else {
            &self.members[node]
        }
    }

    fn num_nodes(&self) -> usize {
        self.boxes.len()
    }
}

impl DpcIndex for GridIndex {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn rho(&self, dc: f64) -> Result<Vec<Rho>> {
        self.rho_with_stats(dc).map(|(rho, _)| rho)
    }

    fn delta(&self, dc: f64, rho: &[Rho]) -> Result<DeltaResult> {
        self.delta_with_config(dc, rho, &self.config.delta)
            .map(|(result, _)| result)
    }

    fn rho_with_policy(&self, dc: f64, policy: ExecPolicy) -> Result<Vec<Rho>> {
        self.rho_with_stats_policy(dc, policy).map(|(rho, _)| rho)
    }

    fn rho_kernel_with_policy(
        &self,
        dc: f64,
        kernel: Kernel,
        policy: ExecPolicy,
    ) -> Result<Vec<Rho>> {
        if kernel.is_cutoff() {
            return self.rho_with_policy(dc, policy);
        }
        validate_dc(dc)?;
        kernel.validate()?;
        Ok(weighted_rho_query_with_policy(self, &self.dataset, dc, kernel, policy).0)
    }

    fn delta_with_policy(&self, dc: f64, rho: &[Rho], policy: ExecPolicy) -> Result<DeltaResult> {
        self.delta_with_config_policy(dc, rho, &self.config.delta, policy)
            .map(|(result, _)| result)
    }

    fn rho_delta_observed(
        &self,
        dc: f64,
        policy: ExecPolicy,
        rec: &dyn dpc_obs::Recorder,
    ) -> Result<(Vec<Rho>, DeltaResult)> {
        validate_dc(dc)?;
        Ok(rho_delta_query_recorded(
            self,
            &self.dataset,
            dc,
            self.config.tie_break,
            &self.config.delta,
            policy,
            rec,
        ))
    }

    fn memory_bytes(&self) -> usize {
        let cells: usize = self
            .members
            .iter()
            .map(|m| m.capacity() * std::mem::size_of::<u32>())
            .sum();
        let boxes = self.boxes.capacity() * std::mem::size_of::<BoundingBox>();
        let keys = self.cell_of.len()
            * (std::mem::size_of::<(i64, i64)>() + std::mem::size_of::<NodeId>());
        cells + boxes + keys + self.dataset.memory_bytes()
    }

    fn stats(&self) -> IndexStats {
        IndexStats::new(self.construction_time, self.memory_bytes())
            .with_counter("cells", self.cell_count() as u64)
            .with_counter("rebuckets", self.rebuckets)
    }

    fn tie_break(&self) -> TieBreak {
        self.config.tie_break
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_partition_invariants;
    use dpc_baseline::LeanDpc;
    use dpc_datasets::generators::{checkins, s1, CheckinConfig};

    fn assert_matches_baseline(data: &Dataset, grid: &GridIndex, dc: f64) {
        let baseline = LeanDpc::build(data);
        let (r1, d1) = grid.rho_delta(dc).unwrap();
        let (r2, d2) = baseline.rho_delta(dc).unwrap();
        assert_eq!(r1, r2, "rho mismatch at dc = {dc}");
        assert_eq!(d1.mu, d2.mu, "mu mismatch at dc = {dc}");
        for p in 0..data.len() {
            assert!((d1.delta(p) - d2.delta(p)).abs() < 1e-9);
        }
    }

    #[test]
    fn structure_invariants_hold() {
        let data = s1(301, 0.1).into_dataset();
        let grid = GridIndex::build(&data);
        check_partition_invariants(&grid, &data);
        assert!(grid.cell_count() > 1);
        assert_eq!(grid.height(), 2);
    }

    #[test]
    fn rebuild_from_bulk_loads_the_new_window() {
        let mut grid = GridIndex::build(&s1(17, 0.03).into_dataset());
        // A replacement window with real version history: pushes and a
        // swap-remove on top of a copy of the current dataset, exactly what
        // the streaming engine's rebuild path materialises.
        let mut window = grid.dataset().clone();
        for (_, p) in s1(18, 0.03).into_dataset().iter().take(20) {
            window.push(p).unwrap();
        }
        window.swap_remove(3).unwrap();
        let version = window.version();
        grid.rebuild_from(window.clone()).unwrap();
        check_partition_invariants(&grid, &window);
        assert_eq!(grid.dataset().points(), window.points());
        assert_eq!(grid.dataset().version(), version);
        assert_matches_baseline(&window, &grid, 40_000.0);
    }

    #[test]
    fn matches_baseline_with_auto_and_explicit_cell_size() {
        let data = s1(307, 0.05).into_dataset();
        let auto = GridIndex::build(&data);
        let explicit = GridIndex::with_config(
            &data,
            &GridConfig {
                cell_size: Some(75_000.0),
                ..Default::default()
            },
        );
        for dc in [10_000.0, 120_000.0] {
            assert_matches_baseline(&data, &auto, dc);
            assert_matches_baseline(&data, &explicit, dc);
        }
        assert_eq!(explicit.cell_size(), 75_000.0);
    }

    #[test]
    fn matches_baseline_on_skewed_data() {
        let data = checkins(300, &CheckinConfig::gowalla(), 17).into_dataset();
        let grid = GridIndex::build(&data);
        check_partition_invariants(&grid, &data);
        for dc in [0.01, 0.3] {
            assert_matches_baseline(&data, &grid, dc);
        }
    }

    #[test]
    fn single_cell_degenerate_grid_is_correct() {
        let data = s1(311, 0.02).into_dataset();
        let grid = GridIndex::with_config(
            &data,
            &GridConfig {
                cell_size: Some(1.0e7),
                ..Default::default()
            },
        );
        assert_eq!(grid.cell_count(), 1);
        assert_matches_baseline(&data, &grid, 40_000.0);
    }

    #[test]
    fn coincident_points_land_in_one_cell() {
        let data = Dataset::new(vec![dpc_core::Point::new(5.0, 5.0); 20]);
        let grid = GridIndex::build(&data);
        check_partition_invariants(&grid, &data);
        assert_eq!(grid.cell_count(), 1);
        assert!(grid.rho(1.0).unwrap().iter().all(|&r| r == 19.0));
    }

    #[test]
    fn empty_dataset() {
        let grid = GridIndex::build(&Dataset::new(vec![]));
        assert_eq!(grid.root(), None);
        assert!(grid.rho(1.0).unwrap().is_empty());
    }

    #[test]
    fn updates_match_a_fresh_build_and_the_baseline() {
        let data = checkins(200, &CheckinConfig::gowalla(), 23).into_dataset();
        let mut grid = GridIndex::build(&data);
        // Mixed workload: inserts inside and far outside the build-time
        // bounding box (new cells, root box growth), removals in the middle
        // (rename path) and at the end (no rename).
        let bb = data.bounding_box();
        grid.insert(dpc_core::Point::new(bb.max_x() + 5.0, bb.max_y() + 5.0))
            .unwrap();
        grid.insert(dpc_core::Point::new(bb.min_x() - 3.0, bb.min_y()))
            .unwrap();
        let inside = data.point(7);
        grid.insert(inside).unwrap();
        assert_eq!(grid.remove(3).unwrap(), Some(grid.len()));
        assert_eq!(grid.remove(grid.len() - 1).unwrap(), None);
        check_partition_invariants(&grid, grid.dataset());
        for dc in [0.05, 0.4, 20.0] {
            assert_matches_baseline(grid.dataset(), &grid, dc);
            let fresh = GridIndex::build(grid.dataset());
            let (r1, d1) = grid.rho_delta(dc).unwrap();
            let (r2, d2) = fresh.rho_delta(dc).unwrap();
            assert_eq!(r1, r2, "rho vs fresh build at dc = {dc}");
            assert_eq!(d1, d2, "delta vs fresh build at dc = {dc}");
        }
    }

    #[test]
    fn grid_grown_from_empty_matches_baseline() {
        let mut grid = GridIndex::build(&Dataset::new(vec![]));
        let pts = s1(41, 0.02).into_dataset();
        for (_, p) in pts.iter() {
            grid.insert(p).unwrap();
        }
        check_partition_invariants(&grid, grid.dataset());
        assert_matches_baseline(grid.dataset(), &grid, 40_000.0);
        // Drain back down to empty.
        while grid.len() > 1 {
            grid.remove(grid.len() / 2).unwrap();
        }
        assert_matches_baseline(grid.dataset(), &grid, 40_000.0);
        grid.remove(0).unwrap();
        assert!(grid.rho(1.0).unwrap().is_empty());
    }

    #[test]
    fn eps_neighbors_matches_linear_scan() {
        let data = checkins(300, &CheckinConfig::gowalla(), 5).into_dataset();
        let grid = GridIndex::build(&data);
        for (center, eps) in [
            (data.point(17), 0.2),
            (data.point(100), 1.5),
            (dpc_core::Point::new(0.0, 0.0), 0.7),
            // eps much larger than the dataset: exercises the cell-walk path.
            (data.point(0), 1.0e6),
        ] {
            let got = grid.eps_neighbors(center, eps).unwrap();
            let expected: Vec<usize> = data
                .iter()
                .filter(|(_, p)| p.distance_squared(&center) < eps * eps)
                .map(|(id, _)| id)
                .collect();
            assert_eq!(got, expected, "eps = {eps}");
        }
        assert!(grid.eps_neighbors(data.point(0), f64::NAN).is_err());
    }

    fn rebuckets(grid: &GridIndex) -> u64 {
        grid.maintenance_counters()
            .iter()
            .find(|(name, _)| *name == "rebuckets")
            .map(|&(_, v)| v)
            .expect("grid must expose a rebuckets counter")
    }

    #[test]
    fn drift_triggers_rebucket_and_results_stay_exact() {
        // Tight config so the trigger is reachable in a small test:
        // threshold = ceil(2.0 * 4) = 8 points in one cell.
        let config = GridConfig {
            target_points_per_cell: 4,
            rebucket_skew: 2.0,
            ..Default::default()
        };
        let seed = s1(59, 0.01).into_dataset();
        let mut grid = GridIndex::with_config(&seed, &config);
        let built_cell_size = grid.cell_size();
        assert_eq!(rebuckets(&grid), 0);
        // Drift: a new hotspot far outside the build-time box. Under the
        // frozen geometry all of it lands in one huge off-grid cell.
        let bb = seed.bounding_box();
        for i in 0..30 {
            let p = dpc_core::Point::new(
                bb.max_x() + 1.0e7 + 50.0 * (i as f64),
                bb.max_y() + 1.0e7 + 35.0 * (i % 7) as f64,
            );
            grid.insert(p).unwrap();
            grid.check_structure();
        }
        assert!(
            rebuckets(&grid) >= 1,
            "drift past the build-time region must re-anchor the grid"
        );
        assert_ne!(
            grid.cell_size(),
            built_cell_size,
            "re-anchor must re-derive the cell size for the drifted window"
        );
        // The partition only affects pruning: results stay exact.
        assert_matches_baseline(grid.dataset(), &grid, 60_000.0);
    }

    #[test]
    fn explicit_cell_size_never_rebuckets() {
        let mut grid = GridIndex::with_config(
            &s1(61, 0.01).into_dataset(),
            &GridConfig {
                cell_size: Some(1.0e7),
                target_points_per_cell: 2,
                rebucket_skew: 1.5,
                ..Default::default()
            },
        );
        for i in 0..40 {
            grid.insert(dpc_core::Point::new(5.0e8 + i as f64, 5.0e8))
                .unwrap();
        }
        assert_eq!(rebuckets(&grid), 0);
    }

    #[test]
    fn rebuild_from_carries_the_rebucket_counter() {
        let config = GridConfig {
            target_points_per_cell: 2,
            rebucket_skew: 2.0,
            ..Default::default()
        };
        let mut grid = GridIndex::with_config(&s1(23, 0.005).into_dataset(), &config);
        for i in 0..20 {
            grid.insert(dpc_core::Point::new(9.0e7 + i as f64, 9.0e7))
                .unwrap();
        }
        let before = rebuckets(&grid);
        assert!(before >= 1);
        grid.rebuild_from(grid.dataset().clone()).unwrap();
        assert_eq!(rebuckets(&grid), before);
    }

    #[test]
    #[should_panic(expected = "rebucket skew must be greater than 1")]
    fn invalid_rebucket_skew_panics() {
        GridIndex::with_config(
            &Dataset::new(vec![]),
            &GridConfig {
                rebucket_skew: 1.0,
                ..Default::default()
            },
        );
    }

    #[test]
    fn remove_rejects_out_of_range_ids() {
        let mut grid = GridIndex::build(&s1(43, 0.01).into_dataset());
        let n = grid.len();
        assert!(grid.remove(n).is_err());
        assert_eq!(grid.len(), n);
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn invalid_cell_size_panics() {
        GridIndex::with_config(
            &Dataset::new(vec![]),
            &GridConfig {
                cell_size: Some(-1.0),
                ..Default::default()
            },
        );
    }
}
