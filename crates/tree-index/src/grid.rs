//! A uniform grid index (extension; related-work style ablation).
//!
//! The related work the paper cites ([22], [24]) accelerates DPC with grid
//! structures. This module provides a flat uniform grid exposed as a
//! two-level [`SpatialPartition`] (a root whose children are the non-empty
//! cells), so the same pruned query algorithms apply. It serves as an
//! ablation point between "no index" and the hierarchical indices: cheap to
//! build, but with far weaker pruning on skewed data.

use std::collections::HashMap;
use std::time::Duration;

use dpc_core::index::{validate_dc, validate_rho_len};
use dpc_core::{
    BoundingBox, Dataset, DeltaResult, DensityOrder, DpcIndex, ExecPolicy, IndexStats, PointId,
    Result, Rho, TieBreak, Timer,
};

use crate::common::{NodeId, SpatialPartition};
use crate::query::{
    delta_query_with_policy, rho_query_with_policy, subtree_max_density, DeltaQueryConfig,
    QueryStats,
};

/// Configuration of a [`GridIndex`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridConfig {
    /// Side length of a grid cell. `None` chooses a size targeting
    /// [`GridConfig::target_points_per_cell`] points per cell on average.
    pub cell_size: Option<f64>,
    /// Average cell occupancy targeted when `cell_size` is `None`.
    pub target_points_per_cell: usize,
    /// Tie-break rule of the density order.
    pub tie_break: TieBreak,
    /// Pruning configuration used by the δ-query of the [`DpcIndex`] impl.
    pub delta: DeltaQueryConfig,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            cell_size: None,
            target_points_per_cell: 32,
            tie_break: TieBreak::default(),
            delta: DeltaQueryConfig::default(),
        }
    }
}

/// The uniform grid index.
#[derive(Debug, Clone)]
pub struct GridIndex {
    dataset: Dataset,
    /// Tight bounding box of each non-empty cell (index 0 is the root).
    boxes: Vec<BoundingBox>,
    /// Point ids of each non-empty cell (index 0, the root, stays empty).
    members: Vec<Vec<u32>>,
    /// Children of the root: ids 1..=cells.
    root_children: Vec<NodeId>,
    cell_size: f64,
    config: GridConfig,
    construction_time: Duration,
}

impl GridIndex {
    /// Builds a grid index with the default configuration.
    pub fn build(dataset: &Dataset) -> Self {
        Self::with_config(dataset, &GridConfig::default())
    }

    /// Builds a grid index with an explicit configuration.
    ///
    /// # Panics
    /// Panics if an explicit `cell_size` is not positive and finite, or if
    /// `target_points_per_cell` is 0.
    pub fn with_config(dataset: &Dataset, config: &GridConfig) -> Self {
        assert!(
            config.target_points_per_cell > 0,
            "GridIndex: target points per cell must be positive"
        );
        if let Some(s) = config.cell_size {
            assert!(
                s.is_finite() && s > 0.0,
                "GridIndex: cell size must be positive, got {s}"
            );
        }
        let timer = Timer::start();
        let n = dataset.len();
        let bb = dataset.bounding_box();
        let cell_size = config.cell_size.unwrap_or_else(|| {
            // Aim for ~target_points_per_cell points per cell on average,
            // assuming a uniform spread over the bounding box.
            let cells = (n as f64 / config.target_points_per_cell as f64).max(1.0);
            let per_axis = cells.sqrt().ceil().max(1.0);
            let extent = bb.width().max(bb.height()).max(f64::MIN_POSITIVE);
            extent / per_axis
        });

        let mut cells: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for (id, p) in dataset.iter() {
            let cx = ((p.x - bb.min_x()) / cell_size).floor() as i64;
            let cy = ((p.y - bb.min_y()) / cell_size).floor() as i64;
            cells.entry((cx, cy)).or_default().push(id as u32);
        }
        // Deterministic node order regardless of hash iteration order.
        let mut keys: Vec<(i64, i64)> = cells.keys().copied().collect();
        keys.sort_unstable();

        let mut boxes = vec![bb];
        let mut members: Vec<Vec<u32>> = vec![Vec::new()];
        for key in keys {
            let ids = cells.remove(&key).expect("cell key must exist");
            let tight = ids.iter().fold(BoundingBox::EMPTY, |acc, &id| {
                acc.extended(dataset.point(id as PointId))
            });
            boxes.push(tight);
            members.push(ids);
        }
        let root_children: Vec<NodeId> = (1..boxes.len()).collect();

        GridIndex {
            dataset: dataset.clone(),
            boxes,
            members,
            root_children,
            cell_size,
            config: *config,
            construction_time: timer.elapsed(),
        }
    }

    /// The side length of a grid cell.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Number of non-empty cells.
    pub fn cell_count(&self) -> usize {
        self.root_children.len()
    }

    /// ρ-query that also reports traversal statistics.
    pub fn rho_with_stats(&self, dc: f64) -> Result<(Vec<Rho>, QueryStats)> {
        self.rho_with_stats_policy(dc, ExecPolicy::Sequential)
    }

    /// [`rho_with_stats`](Self::rho_with_stats) under an explicit execution
    /// policy (bit-identical results at every thread count).
    pub fn rho_with_stats_policy(
        &self,
        dc: f64,
        policy: ExecPolicy,
    ) -> Result<(Vec<Rho>, QueryStats)> {
        validate_dc(dc)?;
        Ok(rho_query_with_policy(self, &self.dataset, dc, policy))
    }

    /// δ-query with an explicit pruning configuration, reporting traversal
    /// statistics.
    pub fn delta_with_config(
        &self,
        dc: f64,
        rho: &[Rho],
        config: &DeltaQueryConfig,
    ) -> Result<(DeltaResult, QueryStats)> {
        self.delta_with_config_policy(dc, rho, config, ExecPolicy::Sequential)
    }

    /// [`delta_with_config`](Self::delta_with_config) under an explicit
    /// execution policy.
    pub fn delta_with_config_policy(
        &self,
        dc: f64,
        rho: &[Rho],
        config: &DeltaQueryConfig,
        policy: ExecPolicy,
    ) -> Result<(DeltaResult, QueryStats)> {
        validate_dc(dc)?;
        validate_rho_len(rho, self.dataset.len())?;
        let order = DensityOrder::with_tie_break(rho, self.config.tie_break);
        let maxrho = subtree_max_density(self, rho);
        Ok(delta_query_with_policy(
            self,
            &self.dataset,
            &order,
            &maxrho,
            config,
            policy,
        ))
    }
}

impl SpatialPartition for GridIndex {
    fn root(&self) -> Option<NodeId> {
        if self.dataset.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn bbox(&self, node: NodeId) -> BoundingBox {
        self.boxes[node]
    }

    fn point_count(&self, node: NodeId) -> usize {
        if node == 0 {
            self.dataset.len()
        } else {
            self.members[node].len()
        }
    }

    fn children(&self, node: NodeId) -> &[NodeId] {
        if node == 0 {
            &self.root_children
        } else {
            &[]
        }
    }

    fn points(&self, node: NodeId) -> &[u32] {
        if node == 0 {
            &[]
        } else {
            &self.members[node]
        }
    }

    fn num_nodes(&self) -> usize {
        self.boxes.len()
    }
}

impl DpcIndex for GridIndex {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn rho(&self, dc: f64) -> Result<Vec<Rho>> {
        self.rho_with_stats(dc).map(|(rho, _)| rho)
    }

    fn delta(&self, dc: f64, rho: &[Rho]) -> Result<DeltaResult> {
        self.delta_with_config(dc, rho, &self.config.delta)
            .map(|(result, _)| result)
    }

    fn rho_with_policy(&self, dc: f64, policy: ExecPolicy) -> Result<Vec<Rho>> {
        self.rho_with_stats_policy(dc, policy).map(|(rho, _)| rho)
    }

    fn delta_with_policy(&self, dc: f64, rho: &[Rho], policy: ExecPolicy) -> Result<DeltaResult> {
        self.delta_with_config_policy(dc, rho, &self.config.delta, policy)
            .map(|(result, _)| result)
    }

    fn memory_bytes(&self) -> usize {
        let cells: usize = self
            .members
            .iter()
            .map(|m| m.capacity() * std::mem::size_of::<u32>())
            .sum();
        let boxes = self.boxes.capacity() * std::mem::size_of::<BoundingBox>();
        cells + boxes + self.dataset.memory_bytes()
    }

    fn stats(&self) -> IndexStats {
        IndexStats::new(self.construction_time, self.memory_bytes())
            .with_counter("cells", self.cell_count() as u64)
    }

    fn tie_break(&self) -> TieBreak {
        self.config.tie_break
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_partition_invariants;
    use dpc_baseline::LeanDpc;
    use dpc_datasets::generators::{checkins, s1, CheckinConfig};

    fn assert_matches_baseline(data: &Dataset, grid: &GridIndex, dc: f64) {
        let baseline = LeanDpc::build(data);
        let (r1, d1) = grid.rho_delta(dc).unwrap();
        let (r2, d2) = baseline.rho_delta(dc).unwrap();
        assert_eq!(r1, r2, "rho mismatch at dc = {dc}");
        assert_eq!(d1.mu, d2.mu, "mu mismatch at dc = {dc}");
        for p in 0..data.len() {
            assert!((d1.delta(p) - d2.delta(p)).abs() < 1e-9);
        }
    }

    #[test]
    fn structure_invariants_hold() {
        let data = s1(301, 0.1).into_dataset();
        let grid = GridIndex::build(&data);
        check_partition_invariants(&grid, &data);
        assert!(grid.cell_count() > 1);
        assert_eq!(grid.height(), 2);
    }

    #[test]
    fn matches_baseline_with_auto_and_explicit_cell_size() {
        let data = s1(307, 0.05).into_dataset();
        let auto = GridIndex::build(&data);
        let explicit = GridIndex::with_config(
            &data,
            &GridConfig {
                cell_size: Some(75_000.0),
                ..Default::default()
            },
        );
        for dc in [10_000.0, 120_000.0] {
            assert_matches_baseline(&data, &auto, dc);
            assert_matches_baseline(&data, &explicit, dc);
        }
        assert_eq!(explicit.cell_size(), 75_000.0);
    }

    #[test]
    fn matches_baseline_on_skewed_data() {
        let data = checkins(300, &CheckinConfig::gowalla(), 17).into_dataset();
        let grid = GridIndex::build(&data);
        check_partition_invariants(&grid, &data);
        for dc in [0.01, 0.3] {
            assert_matches_baseline(&data, &grid, dc);
        }
    }

    #[test]
    fn single_cell_degenerate_grid_is_correct() {
        let data = s1(311, 0.02).into_dataset();
        let grid = GridIndex::with_config(
            &data,
            &GridConfig {
                cell_size: Some(1.0e7),
                ..Default::default()
            },
        );
        assert_eq!(grid.cell_count(), 1);
        assert_matches_baseline(&data, &grid, 40_000.0);
    }

    #[test]
    fn coincident_points_land_in_one_cell() {
        let data = Dataset::new(vec![dpc_core::Point::new(5.0, 5.0); 20]);
        let grid = GridIndex::build(&data);
        check_partition_invariants(&grid, &data);
        assert_eq!(grid.cell_count(), 1);
        assert!(grid.rho(1.0).unwrap().iter().all(|&r| r == 19));
    }

    #[test]
    fn empty_dataset() {
        let grid = GridIndex::build(&Dataset::new(vec![]));
        assert_eq!(grid.root(), None);
        assert!(grid.rho(1.0).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn invalid_cell_size_panics() {
        GridIndex::with_config(
            &Dataset::new(vec![]),
            &GridConfig {
                cell_size: Some(-1.0),
                ..Default::default()
            },
        );
    }
}
