//! A k-d tree index (extension; not part of the paper's evaluation).
//!
//! The paper's reproduction hint ("kd-tree crates available") and its
//! related-work discussion both suggest the k-d tree as the obvious third
//! tree index. It is built here from scratch by recursive median splits on
//! alternating axes, producing a balanced binary tree with tight per-node
//! bounding boxes, and reuses the exact same pruned query algorithms as the
//! quadtree and the R-tree. The ablation benchmark compares it against both.

use std::time::Duration;

use dpc_core::index::{validate_dc, validate_rho_len};
use dpc_core::{
    BoundingBox, Dataset, DeltaResult, DensityOrder, DpcIndex, ExecPolicy, IndexStats, PointId,
    Result, Rho, TieBreak, Timer,
};

use crate::common::{NodeId, SpatialPartition};
use crate::query::{
    delta_query_with_policy, rho_query_with_policy, subtree_max_density, DeltaQueryConfig,
    QueryStats,
};

/// Configuration of a [`KdTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KdTreeConfig {
    /// Maximum number of points per leaf.
    pub leaf_capacity: usize,
    /// Tie-break rule of the density order.
    pub tie_break: TieBreak,
    /// Pruning configuration used by the δ-query of the [`DpcIndex`] impl.
    pub delta: DeltaQueryConfig,
}

impl Default for KdTreeConfig {
    fn default() -> Self {
        KdTreeConfig {
            leaf_capacity: 32,
            tie_break: TieBreak::default(),
            delta: DeltaQueryConfig::default(),
        }
    }
}

#[derive(Debug, Clone)]
enum NodeKind {
    Leaf { points: Vec<u32> },
    Internal { children: [NodeId; 2] },
}

#[derive(Debug, Clone)]
struct KdNode {
    bbox: BoundingBox,
    count: usize,
    kind: NodeKind,
}

/// The k-d tree index.
#[derive(Debug, Clone)]
pub struct KdTree {
    dataset: Dataset,
    nodes: Vec<KdNode>,
    root: Option<NodeId>,
    config: KdTreeConfig,
    construction_time: Duration,
}

impl KdTree {
    /// Builds a k-d tree with the default configuration.
    pub fn build(dataset: &Dataset) -> Self {
        Self::with_config(dataset, &KdTreeConfig::default())
    }

    /// Builds a k-d tree with an explicit configuration.
    ///
    /// # Panics
    /// Panics if `leaf_capacity` is 0.
    pub fn with_config(dataset: &Dataset, config: &KdTreeConfig) -> Self {
        assert!(
            config.leaf_capacity > 0,
            "KdTree: leaf capacity must be positive"
        );
        let timer = Timer::start();
        let mut tree = KdTree {
            dataset: dataset.clone(),
            nodes: Vec::new(),
            root: None,
            config: *config,
            construction_time: Duration::ZERO,
        };
        if !dataset.is_empty() {
            let mut ids: Vec<u32> = (0..dataset.len() as u32).collect();
            let root = tree.build_recursive(&mut ids, 0);
            tree.root = Some(root);
        }
        tree.construction_time = timer.elapsed();
        tree
    }

    /// The configuration used to build the tree.
    pub fn config(&self) -> &KdTreeConfig {
        &self.config
    }

    /// ρ-query that also reports traversal statistics.
    pub fn rho_with_stats(&self, dc: f64) -> Result<(Vec<Rho>, QueryStats)> {
        self.rho_with_stats_policy(dc, ExecPolicy::Sequential)
    }

    /// [`rho_with_stats`](Self::rho_with_stats) under an explicit execution
    /// policy (bit-identical results at every thread count).
    pub fn rho_with_stats_policy(
        &self,
        dc: f64,
        policy: ExecPolicy,
    ) -> Result<(Vec<Rho>, QueryStats)> {
        validate_dc(dc)?;
        Ok(rho_query_with_policy(self, &self.dataset, dc, policy))
    }

    /// δ-query with an explicit pruning configuration, reporting traversal
    /// statistics.
    pub fn delta_with_config(
        &self,
        dc: f64,
        rho: &[Rho],
        config: &DeltaQueryConfig,
    ) -> Result<(DeltaResult, QueryStats)> {
        self.delta_with_config_policy(dc, rho, config, ExecPolicy::Sequential)
    }

    /// [`delta_with_config`](Self::delta_with_config) under an explicit
    /// execution policy.
    pub fn delta_with_config_policy(
        &self,
        dc: f64,
        rho: &[Rho],
        config: &DeltaQueryConfig,
        policy: ExecPolicy,
    ) -> Result<(DeltaResult, QueryStats)> {
        validate_dc(dc)?;
        validate_rho_len(rho, self.dataset.len())?;
        let order = DensityOrder::with_tie_break(rho, self.config.tie_break);
        let maxrho = subtree_max_density(self, rho);
        Ok(delta_query_with_policy(
            self,
            &self.dataset,
            &order,
            &maxrho,
            config,
            policy,
        ))
    }

    fn tight_bbox(&self, ids: &[u32]) -> BoundingBox {
        ids.iter().fold(BoundingBox::EMPTY, |bb, &id| {
            bb.extended(self.dataset.point(id as PointId))
        })
    }

    /// Recursively builds the subtree over `ids`, splitting on axis
    /// `depth % 2` at the median.
    fn build_recursive(&mut self, ids: &mut [u32], depth: usize) -> NodeId {
        let bbox = self.tight_bbox(ids);
        if ids.len() <= self.config.leaf_capacity {
            self.nodes.push(KdNode {
                bbox,
                count: ids.len(),
                kind: NodeKind::Leaf {
                    points: ids.to_vec(),
                },
            });
            return self.nodes.len() - 1;
        }
        let axis = depth % 2;
        let mid = ids.len() / 2;
        ids.select_nth_unstable_by(mid, |&a, &b| {
            let pa = self.dataset.point(a as PointId);
            let pb = self.dataset.point(b as PointId);
            pa.coord(axis).total_cmp(&pb.coord(axis)).then(a.cmp(&b))
        });
        let (left_ids, right_ids) = ids.split_at_mut(mid);
        // `split_at_mut` lets both halves be recursed without cloning, but we
        // need owned slices to satisfy the borrow checker against `self`.
        let mut left_vec = left_ids.to_vec();
        let mut right_vec = right_ids.to_vec();
        let left = self.build_recursive(&mut left_vec, depth + 1);
        let right = self.build_recursive(&mut right_vec, depth + 1);
        let count = self.nodes[left].count + self.nodes[right].count;
        self.nodes.push(KdNode {
            bbox,
            count,
            kind: NodeKind::Internal {
                children: [left, right],
            },
        });
        self.nodes.len() - 1
    }
}

impl SpatialPartition for KdTree {
    fn root(&self) -> Option<NodeId> {
        self.root
    }

    fn bbox(&self, node: NodeId) -> BoundingBox {
        self.nodes[node].bbox
    }

    fn point_count(&self, node: NodeId) -> usize {
        self.nodes[node].count
    }

    fn children(&self, node: NodeId) -> &[NodeId] {
        match &self.nodes[node].kind {
            NodeKind::Internal { children } => children,
            NodeKind::Leaf { .. } => &[],
        }
    }

    fn points(&self, node: NodeId) -> &[u32] {
        match &self.nodes[node].kind {
            NodeKind::Leaf { points } => points,
            NodeKind::Internal { .. } => &[],
        }
    }

    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

impl DpcIndex for KdTree {
    fn name(&self) -> &'static str {
        "kdtree"
    }

    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn rho(&self, dc: f64) -> Result<Vec<Rho>> {
        self.rho_with_stats(dc).map(|(rho, _)| rho)
    }

    fn delta(&self, dc: f64, rho: &[Rho]) -> Result<DeltaResult> {
        self.delta_with_config(dc, rho, &self.config.delta)
            .map(|(result, _)| result)
    }

    fn rho_with_policy(&self, dc: f64, policy: ExecPolicy) -> Result<Vec<Rho>> {
        self.rho_with_stats_policy(dc, policy).map(|(rho, _)| rho)
    }

    fn delta_with_policy(&self, dc: f64, rho: &[Rho], policy: ExecPolicy) -> Result<DeltaResult> {
        self.delta_with_config_policy(dc, rho, &self.config.delta, policy)
            .map(|(result, _)| result)
    }

    fn memory_bytes(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<KdNode>()
                    + match &n.kind {
                        NodeKind::Leaf { points } => points.capacity() * std::mem::size_of::<u32>(),
                        NodeKind::Internal { .. } => 0,
                    }
            })
            .sum();
        node_bytes + self.dataset.memory_bytes()
    }

    fn stats(&self) -> IndexStats {
        IndexStats::new(self.construction_time, self.memory_bytes())
            .with_counter("nodes", self.num_nodes() as u64)
            .with_counter("height", self.height() as u64)
    }

    fn tie_break(&self) -> TieBreak {
        self.config.tie_break
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_partition_invariants;
    use dpc_baseline::LeanDpc;
    use dpc_datasets::generators::{checkins, s1, CheckinConfig};

    fn assert_matches_baseline(data: &Dataset, tree: &KdTree, dc: f64) {
        let baseline = LeanDpc::build(data);
        let (r1, d1) = tree.rho_delta(dc).unwrap();
        let (r2, d2) = baseline.rho_delta(dc).unwrap();
        assert_eq!(r1, r2, "rho mismatch at dc = {dc}");
        assert_eq!(d1.mu, d2.mu, "mu mismatch at dc = {dc}");
        for p in 0..data.len() {
            assert!((d1.delta(p) - d2.delta(p)).abs() < 1e-9);
        }
    }

    #[test]
    fn structure_invariants_and_balance() {
        let data = s1(211, 0.1).into_dataset(); // 500 points
        let tree = KdTree::build(&data);
        check_partition_invariants(&tree, &data);
        // Median splits keep the tree balanced: height is O(log2(n/capacity)).
        assert!(tree.height() <= 8, "height = {}", tree.height());
    }

    #[test]
    fn matches_baseline_on_s1_and_checkins() {
        let s1_data = s1(223, 0.05).into_dataset();
        let tree = KdTree::build(&s1_data);
        for dc in [10_000.0, 100_000.0, 2_000_000.0] {
            assert_matches_baseline(&s1_data, &tree, dc);
        }
        let ck = checkins(300, &CheckinConfig::gowalla(), 3).into_dataset();
        let tree = KdTree::build(&ck);
        for dc in [0.01, 0.5] {
            assert_matches_baseline(&ck, &tree, dc);
        }
    }

    #[test]
    fn small_leaf_capacity_still_correct() {
        let data = s1(227, 0.03).into_dataset();
        let tree = KdTree::with_config(
            &data,
            &KdTreeConfig {
                leaf_capacity: 2,
                ..Default::default()
            },
        );
        check_partition_invariants(&tree, &data);
        assert_matches_baseline(&data, &tree, 50_000.0);
    }

    #[test]
    fn pruning_reduces_work() {
        let data = s1(229, 0.1).into_dataset();
        let tree = KdTree::build(&data);
        let dc = 30_000.0;
        let rho = tree.rho(dc).unwrap();
        let (_, s_pruned) = tree
            .delta_with_config(dc, &rho, &DeltaQueryConfig::default())
            .unwrap();
        let (_, s_full) = tree
            .delta_with_config(dc, &rho, &DeltaQueryConfig::no_pruning())
            .unwrap();
        assert!(s_pruned.points_scanned < s_full.points_scanned);
    }

    #[test]
    fn coincident_points_are_handled() {
        let data = Dataset::new(vec![dpc_core::Point::new(2.0, 2.0); 50]);
        let tree = KdTree::build(&data);
        check_partition_invariants(&tree, &data);
        let rho = tree.rho(0.1).unwrap();
        assert!(rho.iter().all(|&r| r == 49));
    }

    #[test]
    fn empty_and_single_point() {
        assert_eq!(KdTree::build(&Dataset::new(vec![])).num_nodes(), 0);
        let single = KdTree::build(&Dataset::new(vec![dpc_core::Point::new(0.0, 0.0)]));
        let (rho, deltas) = single.rho_delta(1.0).unwrap();
        assert_eq!(rho, vec![0]);
        assert_eq!(deltas.mu(0), None);
    }
}
