//! A k-d tree index (extension; not part of the paper's evaluation).
//!
//! The paper's reproduction hint ("kd-tree crates available") and its
//! related-work discussion both suggest the k-d tree as the obvious third
//! tree index. It is built here from scratch by recursive median splits on
//! alternating axes, producing a balanced binary tree with tight per-node
//! bounding boxes, and reuses the exact same pruned query algorithms as the
//! quadtree and the R-tree. The ablation benchmark compares it against both.
//!
//! ## Online updates
//!
//! The tree is [`UpdatableIndex`]: inserts route down the stored split
//! planes (extending bounding boxes on the way) and deletions clear the
//! entry out of its leaf, leaving *tombstone structure* behind — empty
//! leaves, conservative bounding boxes and growing imbalance. Two amortised
//! triggers keep that decay bounded, in the spirit of the sparse-search
//! k-d tree of Shan et al. (arXiv:2203.00973):
//!
//! * **partial rebuild** — after an insert, the highest node on the
//!   insertion path that is overweight (a leaf past its capacity, or an
//!   internal node one of whose children holds more than
//!   [`KdTreeConfig::rebuild_imbalance`] of its live points — the scapegoat
//!   rule) is rebuilt from its surviving points by fresh median splits;
//! * **full rebuild** — when the number of removals since the last full
//!   rebuild exceeds [`KdTreeConfig::rebuild_dead_fraction`] of the live
//!   size, the whole tree is rebuilt, compacting every tombstone and
//!   re-tightening every box.
//!
//! Queries never see the difference: a deleted point is physically out of
//! its leaf's id list the moment [`UpdatableIndex::remove`] returns, so the
//! generic traversals of [`crate::query`] stay exact between rebuilds —
//! only pruning weakens. Both triggers are observable through
//! [`UpdatableIndex::maintenance_counters`].

use std::time::Duration;

use dpc_core::index::{validate_dc, validate_rho_len};
use dpc_core::{
    BoundingBox, Dataset, DeltaResult, DensityOrder, DpcError, DpcIndex, ExecPolicy, IndexStats,
    Kernel, Point, PointId, Result, Rho, TieBreak, Timer, UpdatableIndex,
};

use crate::common::{check_partition_invariants, NodeId, SpatialPartition};
use crate::query::{
    delta_query_with_policy, eps_query, rho_delta_query_recorded, rho_query_with_policy,
    subtree_max_density, weighted_rho_query_with_policy, DeltaQueryConfig, QueryStats,
};

/// Configuration of a [`KdTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KdTreeConfig {
    /// Maximum number of points per leaf.
    pub leaf_capacity: usize,
    /// Tie-break rule of the density order.
    pub tie_break: TieBreak,
    /// Pruning configuration used by the δ-query of the [`DpcIndex`] impl.
    pub delta: DeltaQueryConfig,
    /// Scapegoat weight bound `α ∈ (0.5, 1.0]`: an internal node is rebuilt
    /// when one child holds more than `α` of its live points (1.0 disables
    /// imbalance rebuilds; leaf-overflow rebuilds still run).
    pub rebuild_imbalance: f64,
    /// Full-rebuild trigger: rebuild the whole tree when the removals since
    /// the last full rebuild exceed this fraction of the live size.
    pub rebuild_dead_fraction: f64,
}

impl Default for KdTreeConfig {
    fn default() -> Self {
        KdTreeConfig {
            leaf_capacity: 32,
            tie_break: TieBreak::default(),
            delta: DeltaQueryConfig::default(),
            rebuild_imbalance: 0.75,
            rebuild_dead_fraction: 0.5,
        }
    }
}

#[derive(Debug, Clone)]
enum NodeKind {
    Leaf {
        points: Vec<u32>,
    },
    Internal {
        children: [NodeId; 2],
        /// Split axis (0 = x, 1 = y) used to route inserts.
        axis: u8,
        /// Split coordinate: `coord < split` goes left, otherwise right.
        /// Routing is a placement heuristic only — correctness rests on the
        /// [`SpatialPartition`] invariants, not on the split discipline.
        split: f64,
    },
}

#[derive(Debug, Clone)]
struct KdNode {
    bbox: BoundingBox,
    count: usize,
    /// Parent node; the root stores itself.
    parent: NodeId,
    kind: NodeKind,
}

/// The k-d tree index.
#[derive(Debug, Clone)]
pub struct KdTree {
    dataset: Dataset,
    nodes: Vec<KdNode>,
    root: Option<NodeId>,
    /// Leaf currently holding each dense point id.
    leaf_of: Vec<NodeId>,
    /// Arena slots freed by subtree rebuilds, recycled by [`Self::alloc`].
    free: Vec<NodeId>,
    /// Removals since the last full rebuild (the "dead fraction" numerator).
    removed_since_rebuild: usize,
    /// Partial (non-root) rebuilds triggered by overflow or imbalance.
    subtree_rebuilds: u64,
    /// Whole-tree rebuilds (dead-fraction trigger, or a scapegoat at root).
    full_rebuilds: u64,
    /// True while an `apply_batch` epoch is in flight: the per-update
    /// scapegoat and dead-fraction triggers are deferred to one
    /// [`Self::run_deferred_maintenance`] pass at the end of the batch.
    in_batch: bool,
    config: KdTreeConfig,
    construction_time: Duration,
}

impl KdTree {
    /// Builds a k-d tree with the default configuration.
    pub fn build(dataset: &Dataset) -> Self {
        Self::with_config(dataset, &KdTreeConfig::default())
    }

    /// Builds a k-d tree with an explicit configuration.
    ///
    /// # Panics
    /// Panics if `leaf_capacity` is 0, `rebuild_imbalance` is outside
    /// `(0.5, 1.0]`, or `rebuild_dead_fraction` is not positive.
    pub fn with_config(dataset: &Dataset, config: &KdTreeConfig) -> Self {
        assert!(
            config.leaf_capacity > 0,
            "KdTree: leaf capacity must be positive"
        );
        assert!(
            config.rebuild_imbalance > 0.5 && config.rebuild_imbalance <= 1.0,
            "KdTree: rebuild_imbalance must be in (0.5, 1.0], got {}",
            config.rebuild_imbalance
        );
        assert!(
            config.rebuild_dead_fraction > 0.0,
            "KdTree: rebuild_dead_fraction must be positive, got {}",
            config.rebuild_dead_fraction
        );
        let timer = Timer::start();
        let mut tree = KdTree {
            dataset: dataset.clone(),
            nodes: Vec::new(),
            root: None,
            leaf_of: vec![0; dataset.len()],
            free: Vec::new(),
            removed_since_rebuild: 0,
            subtree_rebuilds: 0,
            full_rebuilds: 0,
            in_batch: false,
            config: *config,
            construction_time: Duration::ZERO,
        };
        if !dataset.is_empty() {
            let mut ids: Vec<u32> = (0..dataset.len() as u32).collect();
            let root = tree.build_recursive(&mut ids, 0);
            tree.nodes[root].parent = root;
            tree.root = Some(root);
        }
        tree.construction_time = timer.elapsed();
        tree
    }

    /// The configuration used to build the tree.
    pub fn config(&self) -> &KdTreeConfig {
        &self.config
    }

    /// Partial (non-root) subtree rebuilds performed so far.
    pub fn subtree_rebuilds(&self) -> u64 {
        self.subtree_rebuilds
    }

    /// Full-tree rebuilds performed so far.
    pub fn full_rebuilds(&self) -> u64 {
        self.full_rebuilds
    }

    /// ρ-query that also reports traversal statistics.
    pub fn rho_with_stats(&self, dc: f64) -> Result<(Vec<Rho>, QueryStats)> {
        self.rho_with_stats_policy(dc, ExecPolicy::Sequential)
    }

    /// [`rho_with_stats`](Self::rho_with_stats) under an explicit execution
    /// policy (bit-identical results at every thread count).
    pub fn rho_with_stats_policy(
        &self,
        dc: f64,
        policy: ExecPolicy,
    ) -> Result<(Vec<Rho>, QueryStats)> {
        validate_dc(dc)?;
        Ok(rho_query_with_policy(self, &self.dataset, dc, policy))
    }

    /// δ-query with an explicit pruning configuration, reporting traversal
    /// statistics.
    pub fn delta_with_config(
        &self,
        dc: f64,
        rho: &[Rho],
        config: &DeltaQueryConfig,
    ) -> Result<(DeltaResult, QueryStats)> {
        self.delta_with_config_policy(dc, rho, config, ExecPolicy::Sequential)
    }

    /// [`delta_with_config`](Self::delta_with_config) under an explicit
    /// execution policy.
    pub fn delta_with_config_policy(
        &self,
        dc: f64,
        rho: &[Rho],
        config: &DeltaQueryConfig,
        policy: ExecPolicy,
    ) -> Result<(DeltaResult, QueryStats)> {
        validate_dc(dc)?;
        validate_rho_len(rho, self.dataset.len())?;
        let order = DensityOrder::with_tie_break(rho, self.config.tie_break);
        let maxrho = subtree_max_density(self, rho);
        Ok(delta_query_with_policy(
            self,
            &self.dataset,
            &order,
            &maxrho,
            config,
            policy,
        ))
    }

    fn tight_bbox(&self, ids: &[u32]) -> BoundingBox {
        ids.iter().fold(BoundingBox::EMPTY, |bb, &id| {
            bb.extended(self.dataset.point(id as PointId))
        })
    }

    /// Allocates an arena slot, recycling one freed by an earlier rebuild.
    fn alloc(&mut self, node: KdNode) -> NodeId {
        match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    /// Recursively builds the subtree over `ids`, splitting on axis
    /// `depth % 2` at the median. Records the leaf of every id and the
    /// parent of every created child; the caller owns the returned node's
    /// parent link.
    fn build_recursive(&mut self, ids: &mut [u32], depth: usize) -> NodeId {
        let bbox = self.tight_bbox(ids);
        if ids.len() <= self.config.leaf_capacity {
            let node = self.alloc(KdNode {
                bbox,
                count: ids.len(),
                parent: 0,
                kind: NodeKind::Leaf {
                    points: ids.to_vec(),
                },
            });
            for &id in ids.iter() {
                self.leaf_of[id as usize] = node;
            }
            return node;
        }
        let axis = depth % 2;
        let mid = ids.len() / 2;
        ids.select_nth_unstable_by(mid, |&a, &b| {
            let pa = self.dataset.point(a as PointId);
            let pb = self.dataset.point(b as PointId);
            pa.coord(axis).total_cmp(&pb.coord(axis)).then(a.cmp(&b))
        });
        let split = self.dataset.point(ids[mid] as PointId).coord(axis);
        let (left_ids, right_ids) = ids.split_at_mut(mid);
        // `split_at_mut` lets both halves be recursed without cloning, but we
        // need owned slices to satisfy the borrow checker against `self`.
        let mut left_vec = left_ids.to_vec();
        let mut right_vec = right_ids.to_vec();
        let left = self.build_recursive(&mut left_vec, depth + 1);
        let right = self.build_recursive(&mut right_vec, depth + 1);
        let count = self.nodes[left].count + self.nodes[right].count;
        let node = self.alloc(KdNode {
            bbox,
            count,
            parent: 0,
            kind: NodeKind::Internal {
                children: [left, right],
                axis: axis as u8,
                split,
            },
        });
        self.nodes[left].parent = node;
        self.nodes[right].parent = node;
        node
    }

    /// Depth of `node` (0 for the root), via parent links.
    fn depth_of(&self, mut node: NodeId) -> usize {
        let mut depth = 0;
        while self.nodes[node].parent != node {
            node = self.nodes[node].parent;
            depth += 1;
        }
        depth
    }

    /// Frees every arena slot of the subtree under `node` and returns the
    /// live point ids it held.
    fn collect_and_free(&mut self, node: NodeId) -> Vec<u32> {
        let mut ids = Vec::with_capacity(self.nodes[node].count);
        let mut stack = vec![node];
        while let Some(m) = stack.pop() {
            match &self.nodes[m].kind {
                NodeKind::Leaf { points } => ids.extend_from_slice(points),
                NodeKind::Internal { children, .. } => stack.extend_from_slice(children),
            }
            self.free.push(m);
        }
        ids
    }

    /// Rebuilds the subtree rooted at `node` from its surviving points,
    /// compacting tombstones and restoring balance and tight boxes below it.
    fn rebuild_subtree(&mut self, node: NodeId) {
        let depth = self.depth_of(node);
        let parent = self.nodes[node].parent;
        let is_root = self.root == Some(node);
        let mut ids = self.collect_and_free(node);
        debug_assert!(!ids.is_empty(), "rebuilding an empty subtree");
        let fresh = self.build_recursive(&mut ids, depth);
        if is_root {
            self.nodes[fresh].parent = fresh;
            self.root = Some(fresh);
            self.full_rebuilds += 1;
            self.removed_since_rebuild = 0;
        } else {
            self.nodes[fresh].parent = parent;
            if let NodeKind::Internal { children, .. } = &mut self.nodes[parent].kind {
                for c in children.iter_mut() {
                    if *c == node {
                        *c = fresh;
                    }
                }
            }
            self.subtree_rebuilds += 1;
        }
    }

    /// Whether `node` violates its weight bound: a leaf past its capacity,
    /// or an internal node one of whose children carries more than `α` of
    /// its live points (checked only above `2 × leaf_capacity` points so
    /// tiny subtrees are not churned).
    fn is_overweight(&self, node: NodeId) -> bool {
        let n = self.nodes[node].count;
        match &self.nodes[node].kind {
            NodeKind::Leaf { points } => points.len() > self.config.leaf_capacity,
            NodeKind::Internal { children, .. } => {
                n > 2 * self.config.leaf_capacity
                    && children.iter().any(|&c| {
                        self.nodes[c].count as f64 > self.config.rebuild_imbalance * n as f64
                    })
            }
        }
    }

    /// The end-of-batch maintenance pass of
    /// [`UpdatableIndex::apply_batch`]: runs the amortised triggers **once
    /// per epoch** instead of once per update.
    ///
    /// The dead-fraction check comes first — one full rebuild settles every
    /// deferred violation at once. Otherwise a single top-down sweep
    /// rebuilds each highest overweight node (a rebuilt subtree is balanced,
    /// so the sweep does not descend into it); this is the batch analogue of
    /// the per-insert scapegoat pass. The sweep only runs when the batch
    /// inserted something (`inserted`): removals cannot create overweight
    /// nodes, and the sweep's node ids would be the only cost of a pure
    /// eviction epoch. Subtrees small enough to hold no violation
    /// (`count ≤ leaf_capacity`) are skipped.
    fn run_deferred_maintenance(&mut self, inserted: bool) {
        let Some(root) = self.root else { return };
        if self.removed_since_rebuild as f64
            > self.config.rebuild_dead_fraction * self.dataset.len() as f64
        {
            self.rebuild_subtree(root);
            return;
        }
        if !inserted {
            return;
        }
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            if self.is_overweight(node) {
                self.rebuild_subtree(node);
                continue;
            }
            if self.nodes[node].count <= self.config.leaf_capacity {
                continue; // nothing below can overflow or be imbalanced
            }
            if let NodeKind::Internal { children, .. } = &self.nodes[node].kind {
                stack.extend_from_slice(children);
            }
        }
    }

    /// Checks the tree's structural bookkeeping: the generic partition
    /// invariants plus the update-path state (`leaf_of` agreement, parent
    /// links, live counts vs dataset size).
    ///
    /// # Panics
    /// Panics with a descriptive message on the first violation.
    pub fn check_structure(&self) {
        check_partition_invariants(self, &self.dataset);
        assert_eq!(
            self.leaf_of.len(),
            self.dataset.len(),
            "leaf_of length diverged from the dataset"
        );
        for (id, &leaf) in self.leaf_of.iter().enumerate() {
            match &self.nodes[leaf].kind {
                NodeKind::Leaf { points } => assert!(
                    points.contains(&(id as u32)),
                    "leaf_of[{id}] = {leaf} but that leaf does not hold the point"
                ),
                NodeKind::Internal { .. } => {
                    panic!("leaf_of[{id}] = {leaf} points at an internal node")
                }
            }
        }
        if let Some(root) = self.root {
            assert_eq!(self.nodes[root].parent, root, "root must be its own parent");
            let mut stack = vec![root];
            while let Some(node) = stack.pop() {
                if let NodeKind::Internal { children, .. } = &self.nodes[node].kind {
                    for &c in children {
                        assert_eq!(
                            self.nodes[c].parent, node,
                            "child {c} has a stale parent link"
                        );
                        stack.push(c);
                    }
                }
            }
        }
    }
}

impl SpatialPartition for KdTree {
    fn root(&self) -> Option<NodeId> {
        self.root
    }

    fn bbox(&self, node: NodeId) -> BoundingBox {
        self.nodes[node].bbox
    }

    fn point_count(&self, node: NodeId) -> usize {
        self.nodes[node].count
    }

    fn children(&self, node: NodeId) -> &[NodeId] {
        match &self.nodes[node].kind {
            NodeKind::Internal { children, .. } => children,
            NodeKind::Leaf { .. } => &[],
        }
    }

    fn points(&self, node: NodeId) -> &[u32] {
        match &self.nodes[node].kind {
            NodeKind::Leaf { points } => points,
            NodeKind::Internal { .. } => &[],
        }
    }

    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

impl DpcIndex for KdTree {
    fn name(&self) -> &'static str {
        "kdtree"
    }

    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn rho(&self, dc: f64) -> Result<Vec<Rho>> {
        self.rho_with_stats(dc).map(|(rho, _)| rho)
    }

    fn delta(&self, dc: f64, rho: &[Rho]) -> Result<DeltaResult> {
        self.delta_with_config(dc, rho, &self.config.delta)
            .map(|(result, _)| result)
    }

    fn rho_with_policy(&self, dc: f64, policy: ExecPolicy) -> Result<Vec<Rho>> {
        self.rho_with_stats_policy(dc, policy).map(|(rho, _)| rho)
    }

    fn rho_kernel_with_policy(
        &self,
        dc: f64,
        kernel: Kernel,
        policy: ExecPolicy,
    ) -> Result<Vec<Rho>> {
        if kernel.is_cutoff() {
            return self.rho_with_policy(dc, policy);
        }
        validate_dc(dc)?;
        kernel.validate()?;
        Ok(weighted_rho_query_with_policy(self, &self.dataset, dc, kernel, policy).0)
    }

    fn delta_with_policy(&self, dc: f64, rho: &[Rho], policy: ExecPolicy) -> Result<DeltaResult> {
        self.delta_with_config_policy(dc, rho, &self.config.delta, policy)
            .map(|(result, _)| result)
    }

    fn rho_delta_observed(
        &self,
        dc: f64,
        policy: ExecPolicy,
        rec: &dyn dpc_obs::Recorder,
    ) -> Result<(Vec<Rho>, DeltaResult)> {
        validate_dc(dc)?;
        Ok(rho_delta_query_recorded(
            self,
            &self.dataset,
            dc,
            self.config.tie_break,
            &self.config.delta,
            policy,
            rec,
        ))
    }

    fn memory_bytes(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<KdNode>()
                    + match &n.kind {
                        NodeKind::Leaf { points } => points.capacity() * std::mem::size_of::<u32>(),
                        NodeKind::Internal { .. } => 0,
                    }
            })
            .sum();
        let maps = (self.leaf_of.capacity() + self.free.capacity()) * std::mem::size_of::<NodeId>();
        node_bytes + maps + self.dataset.memory_bytes()
    }

    fn stats(&self) -> IndexStats {
        IndexStats::new(self.construction_time, self.memory_bytes())
            // Live structure, not the arena bound (`num_nodes` includes
            // free-listed slots awaiting reuse after rebuilds).
            .with_counter("nodes", (self.nodes.len() - self.free.len()) as u64)
            .with_counter("height", self.height() as u64)
            .with_counter("subtree_rebuilds", self.subtree_rebuilds)
            .with_counter("full_rebuilds", self.full_rebuilds)
    }

    fn tie_break(&self) -> TieBreak {
        self.config.tie_break
    }
}

impl UpdatableIndex for KdTree {
    fn insert(&mut self, p: Point) -> Result<PointId> {
        let id = self.dataset.push(p)?;
        let Some(root) = self.root else {
            let node = self.alloc(KdNode {
                bbox: BoundingBox::from_point(p),
                count: 1,
                parent: 0,
                kind: NodeKind::Leaf {
                    points: vec![id as u32],
                },
            });
            self.nodes[node].parent = node;
            self.root = Some(node);
            self.leaf_of.push(node);
            return Ok(id);
        };
        // Route down the split planes, growing boxes and counts on the way.
        let mut node = root;
        loop {
            self.nodes[node].bbox = self.nodes[node].bbox.extended(p);
            self.nodes[node].count += 1;
            match &self.nodes[node].kind {
                NodeKind::Internal {
                    children,
                    axis,
                    split,
                } => {
                    node = if p.coord(*axis as usize) < *split {
                        children[0]
                    } else {
                        children[1]
                    };
                }
                NodeKind::Leaf { .. } => break,
            }
        }
        if let NodeKind::Leaf { points } = &mut self.nodes[node].kind {
            points.push(id as u32);
        }
        self.leaf_of.push(node);

        // Scapegoat pass: rebuild the *highest* overweight node on the
        // insertion path, so one rebuild fixes every violation beneath it.
        // Inside an apply_batch epoch the pass is deferred: overflowing
        // leaves stay correct (queries scan them regardless of size) and one
        // end-of-batch sweep settles every violation at once.
        if self.in_batch {
            return Ok(id);
        }
        let mut scapegoat = None;
        let mut cur = node;
        loop {
            if self.is_overweight(cur) {
                scapegoat = Some(cur);
            }
            let parent = self.nodes[cur].parent;
            if parent == cur {
                break;
            }
            cur = parent;
        }
        if let Some(s) = scapegoat {
            self.rebuild_subtree(s);
        }
        Ok(id)
    }

    fn remove(&mut self, id: PointId) -> Result<Option<PointId>> {
        let n = self.dataset.len();
        if id >= n {
            return Err(DpcError::invalid_parameter(
                "id",
                format!("KdTree::remove: point id {id} is out of range (n = {n})"),
            ));
        }
        let last = n - 1;
        let leaf = self.leaf_of[id];
        let moved_leaf = self.leaf_of[last];
        let moved = self.dataset.swap_remove(id)?;

        // Clear the entry out of its leaf: the point is invisible to every
        // query from here on; the leaf itself stays as tombstone structure.
        if let NodeKind::Leaf { points } = &mut self.nodes[leaf].kind {
            let pos = points
                .iter()
                .position(|&q| q as PointId == id)
                .expect("KdTree: removed point must be listed in its leaf");
            points.swap_remove(pos);
        }
        let mut cur = leaf;
        loop {
            self.nodes[cur].count -= 1;
            let parent = self.nodes[cur].parent;
            if parent == cur {
                break;
            }
            cur = parent;
        }

        // Mirror the dataset's swap-remove rename (last → id).
        if moved.is_some() {
            if let NodeKind::Leaf { points } = &mut self.nodes[moved_leaf].kind {
                let pos = points
                    .iter()
                    .position(|&q| q as PointId == last)
                    .expect("KdTree: moved point must be listed in its leaf");
                points[pos] = id as u32;
            }
            self.leaf_of[id] = moved_leaf;
        }
        self.leaf_of.pop();

        if self.dataset.is_empty() {
            self.nodes.clear();
            self.free.clear();
            self.root = None;
            self.removed_since_rebuild = 0;
            return Ok(moved);
        }
        self.removed_since_rebuild += 1;
        if !self.in_batch
            && self.removed_since_rebuild as f64
                > self.config.rebuild_dead_fraction * self.dataset.len() as f64
        {
            let root = self.root.expect("non-empty tree has a root");
            self.rebuild_subtree(root);
        }
        Ok(moved)
    }

    fn apply_batch(&mut self, ops: &[dpc_core::BatchOp]) -> Result<()> {
        // A single-op batch is exactly a per-update mutation: take the
        // per-update path (O(log n) insertion-path scapegoat walk) rather
        // than paying the end-of-batch whole-tree sweep for one op.
        if let [op] = ops {
            return match *op {
                dpc_core::BatchOp::Insert(p) => self.insert(p).map(drop),
                dpc_core::BatchOp::Remove(id) => self.remove(id).map(drop),
            };
        }
        self.in_batch = true;
        let mut inserted = false;
        let result = ops.iter().try_for_each(|op| match *op {
            dpc_core::BatchOp::Insert(p) => {
                inserted = true;
                self.insert(p).map(drop)
            }
            dpc_core::BatchOp::Remove(id) => self.remove(id).map(drop),
        });
        self.in_batch = false;
        // Even a failed batch leaves its applied prefix in place, so the
        // deferred triggers must still run to keep the tree healthy.
        self.run_deferred_maintenance(inserted);
        result
    }

    fn rebuild_from(&mut self, dataset: Dataset) -> Result<()> {
        // Bulk load: one balanced median build over the new window (the same
        // O(n log n) pass `build` uses) instead of n insertion-path walks —
        // and the result starts perfectly balanced, with no dead fraction.
        // The adopted dataset keeps the caller's id order and version
        // history; the lifetime maintenance counters carry over (a bulk
        // load is a rebuild *instead of* amortised maintenance, so it
        // advances neither trigger counter).
        let config = self.config;
        let subtree_rebuilds = self.subtree_rebuilds;
        let full_rebuilds = self.full_rebuilds;
        *self = KdTree::with_config(&dataset, &config);
        self.subtree_rebuilds = subtree_rebuilds;
        self.full_rebuilds = full_rebuilds;
        Ok(())
    }

    fn eps_neighbors(&self, center: Point, eps: f64) -> Result<Vec<PointId>> {
        validate_dc(eps)?;
        Ok(eps_query(self, &self.dataset, center, eps))
    }

    fn maintenance_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("subtree_rebuilds", self.subtree_rebuilds),
            ("full_rebuilds", self.full_rebuilds),
            ("removed_since_rebuild", self.removed_since_rebuild as u64),
        ]
    }

    fn check_invariants(&self) {
        self.check_structure();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpc_baseline::LeanDpc;
    use dpc_core::index::eps_neighbors_scan;
    use dpc_datasets::generators::{checkins, s1, CheckinConfig};
    use dpc_datasets::testsupport::{test_points, TestDistribution};

    fn assert_matches_baseline(data: &Dataset, tree: &KdTree, dc: f64) {
        let baseline = LeanDpc::build(data);
        let (r1, d1) = tree.rho_delta(dc).unwrap();
        let (r2, d2) = baseline.rho_delta(dc).unwrap();
        assert_eq!(r1, r2, "rho mismatch at dc = {dc}");
        assert_eq!(d1.mu, d2.mu, "mu mismatch at dc = {dc}");
        for p in 0..data.len() {
            assert!((d1.delta(p) - d2.delta(p)).abs() < 1e-9);
        }
    }

    #[test]
    fn structure_invariants_and_balance() {
        let data = s1(211, 0.1).into_dataset(); // 500 points
        let tree = KdTree::build(&data);
        tree.check_structure();
        // Median splits keep the tree balanced: height is O(log2(n/capacity)).
        assert!(tree.height() <= 8, "height = {}", tree.height());
    }

    #[test]
    fn matches_baseline_on_s1_and_checkins() {
        let s1_data = s1(223, 0.05).into_dataset();
        let tree = KdTree::build(&s1_data);
        for dc in [10_000.0, 100_000.0, 2_000_000.0] {
            assert_matches_baseline(&s1_data, &tree, dc);
        }
        let ck = checkins(300, &CheckinConfig::gowalla(), 3).into_dataset();
        let tree = KdTree::build(&ck);
        for dc in [0.01, 0.5] {
            assert_matches_baseline(&ck, &tree, dc);
        }
    }

    #[test]
    fn small_leaf_capacity_still_correct() {
        let data = s1(227, 0.03).into_dataset();
        let tree = KdTree::with_config(
            &data,
            &KdTreeConfig {
                leaf_capacity: 2,
                ..Default::default()
            },
        );
        tree.check_structure();
        assert_matches_baseline(&data, &tree, 50_000.0);
    }

    #[test]
    fn pruning_reduces_work() {
        let data = s1(229, 0.1).into_dataset();
        let tree = KdTree::build(&data);
        let dc = 30_000.0;
        let rho = tree.rho(dc).unwrap();
        let (_, s_pruned) = tree
            .delta_with_config(dc, &rho, &DeltaQueryConfig::default())
            .unwrap();
        let (_, s_full) = tree
            .delta_with_config(dc, &rho, &DeltaQueryConfig::no_pruning())
            .unwrap();
        assert!(s_pruned.points_scanned < s_full.points_scanned);
    }

    #[test]
    fn coincident_points_are_handled() {
        let data = Dataset::new(vec![dpc_core::Point::new(2.0, 2.0); 50]);
        let tree = KdTree::build(&data);
        tree.check_structure();
        let rho = tree.rho(0.1).unwrap();
        assert!(rho.iter().all(|&r| r == 49.0));
    }

    #[test]
    fn empty_and_single_point() {
        assert_eq!(KdTree::build(&Dataset::new(vec![])).num_nodes(), 0);
        let single = KdTree::build(&Dataset::new(vec![dpc_core::Point::new(0.0, 0.0)]));
        let (rho, deltas) = single.rho_delta(1.0).unwrap();
        assert_eq!(rho, vec![0.0]);
        assert_eq!(deltas.mu(0), None);
    }

    #[test]
    fn updates_match_a_fresh_build_and_the_baseline() {
        let data = checkins(200, &CheckinConfig::gowalla(), 23).into_dataset();
        let mut tree = KdTree::build(&data);
        let bb = data.bounding_box();
        tree.insert(Point::new(bb.max_x() + 5.0, bb.max_y() + 5.0))
            .unwrap();
        tree.insert(Point::new(bb.min_x() - 3.0, bb.min_y()))
            .unwrap();
        let inside = data.point(7);
        tree.insert(inside).unwrap();
        assert_eq!(tree.remove(3).unwrap(), Some(tree.len()));
        assert_eq!(tree.remove(tree.len() - 1).unwrap(), None);
        tree.check_structure();
        for dc in [0.05, 0.4, 20.0] {
            assert_matches_baseline(tree.dataset(), &tree, dc);
            let fresh = KdTree::build(tree.dataset());
            let (r1, d1) = tree.rho_delta(dc).unwrap();
            let (r2, d2) = fresh.rho_delta(dc).unwrap();
            assert_eq!(r1, r2, "rho vs fresh build at dc = {dc}");
            assert_eq!(d1, d2, "delta vs fresh build at dc = {dc}");
        }
    }

    #[test]
    fn tree_grown_from_empty_stays_balanced_and_correct() {
        let mut tree = KdTree::with_config(
            &Dataset::new(vec![]),
            &KdTreeConfig {
                leaf_capacity: 4,
                ..Default::default()
            },
        );
        for p in test_points(TestDistribution::Clustered, 300, 17) {
            tree.insert(p).unwrap();
        }
        tree.check_structure();
        // Scapegoat rebuilds must have fired and kept the height logarithmic:
        // a 300-point tree with capacity 4 has ~75 leaves; a degenerate
        // insertion-order tree would be far deeper than 14 levels.
        assert!(tree.subtree_rebuilds() > 0);
        assert!(tree.height() <= 14, "height = {}", tree.height());
        assert_matches_baseline(tree.dataset(), &tree, 120.0);
    }

    #[test]
    fn one_sided_drift_triggers_rebuilds() {
        // Monotone inserts are the worst case for a frozen split structure:
        // every point lands in the rightmost leaf. The scapegoat rule must
        // keep rebuilding the drifting flank.
        let mut tree = KdTree::with_config(
            &Dataset::new(vec![]),
            &KdTreeConfig {
                leaf_capacity: 4,
                ..Default::default()
            },
        );
        for i in 0..200 {
            tree.insert(Point::new(i as f64, (i % 7) as f64)).unwrap();
        }
        tree.check_structure();
        assert!(tree.subtree_rebuilds() > 0);
        assert!(tree.height() <= 13, "height = {}", tree.height());
    }

    #[test]
    fn deletion_heavy_workload_triggers_full_rebuild() {
        let data = Dataset::new(test_points(TestDistribution::Skewed, 200, 5));
        let mut tree = KdTree::build(&data);
        // Delete 90%: the dead-fraction trigger must fire (repeatedly).
        while tree.len() > 20 {
            tree.remove(tree.len() / 2).unwrap();
        }
        tree.check_structure();
        assert!(tree.full_rebuilds() >= 1);
        assert_matches_baseline(tree.dataset(), &tree, 150.0);
    }

    #[test]
    fn rebuild_from_bulk_loads_and_carries_counters() {
        let data = Dataset::new(test_points(TestDistribution::Skewed, 200, 5));
        let mut tree = KdTree::build(&data);
        while tree.len() > 40 {
            tree.remove(tree.len() / 2).unwrap();
        }
        let rebuilds = (tree.subtree_rebuilds(), tree.full_rebuilds());
        assert!(rebuilds.1 >= 1);
        // A replacement window with real version history, as the streaming
        // engine's rebuild path materialises it.
        let mut window = tree.dataset().clone();
        for p in test_points(TestDistribution::Clustered, 60, 7) {
            window.push(p).unwrap();
        }
        window.swap_remove(0).unwrap();
        let version = window.version();
        tree.rebuild_from(window.clone()).unwrap();
        tree.check_structure();
        assert_eq!(tree.dataset().points(), window.points());
        assert_eq!(tree.dataset().version(), version);
        // A bulk load is a rebuild *instead of* amortised maintenance: the
        // lifetime trigger counters carry over unchanged.
        assert_eq!((tree.subtree_rebuilds(), tree.full_rebuilds()), rebuilds);
        assert_matches_baseline(&window, &tree, 150.0);
    }

    #[test]
    fn eps_neighbors_matches_linear_scan_through_updates() {
        let data = Dataset::new(test_points(TestDistribution::Clustered, 120, 11));
        let mut tree = KdTree::build(&data);
        for step in 0..60 {
            if step % 3 == 0 && tree.len() > 1 {
                tree.remove(step % tree.len()).unwrap();
            } else {
                let p = test_points(TestDistribution::Uniform, 1, 1000 + step as u64)[0];
                tree.insert(p).unwrap();
            }
            let center = tree.dataset().point(step % tree.len());
            let got = tree.eps_neighbors(center, 90.0).unwrap();
            let expected = eps_neighbors_scan(tree.dataset(), center, 90.0).unwrap();
            assert_eq!(got, expected, "step {step}");
        }
        assert!(tree.eps_neighbors(Point::new(0.0, 0.0), f64::NAN).is_err());
    }

    #[test]
    fn remove_rejects_out_of_range_ids_and_drains_to_empty() {
        let mut tree = KdTree::build(&s1(43, 0.01).into_dataset());
        let n = tree.len();
        assert!(tree.remove(n).is_err());
        assert_eq!(tree.len(), n);
        while tree.len() > 0 {
            tree.remove(0).unwrap();
        }
        assert_eq!(tree.root(), None);
        assert!(tree.rho(1.0).unwrap().is_empty());
        // The tree must be reusable after draining.
        tree.insert(Point::new(1.0, 2.0)).unwrap();
        assert_eq!(tree.rho(1.0).unwrap(), vec![0.0]);
    }

    #[test]
    fn maintenance_counters_are_exposed() {
        let data = Dataset::new(test_points(TestDistribution::Uniform, 64, 3));
        let mut tree = KdTree::build(&data);
        for i in 0..40 {
            tree.remove(i % tree.len()).unwrap();
        }
        let counters = tree.maintenance_counters();
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert!(get("full_rebuilds") >= 1);
        assert_eq!(
            tree.stats().counter("full_rebuilds"),
            Some(get("full_rebuilds"))
        );
    }
}
