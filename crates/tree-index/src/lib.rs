//! # dpc-tree-index
//!
//! Tree-based index structures for Density Peak Clustering (§4 of the paper).
//!
//! List-based indices answer DPC queries very fast but need `Θ(n²)` memory;
//! tree-based spatial indices trade a little query time for near-linear
//! memory and much cheaper construction. This crate provides:
//!
//! * [`Quadtree`] (§4.1) — a point-region quadtree,
//! * [`RTree`] (§4.2) — an R-tree bulk-loaded with the STR packing algorithm,
//! * [`KdTree`] — a k-d tree (not in the paper; ablation/extension),
//! * [`GridIndex`] — a uniform grid (related-work style ablation),
//!
//! all built over the same [`SpatialPartition`] abstraction so that the two
//! DPC queries are implemented exactly once, in [`query`]:
//!
//! * the **ρ-query** classifies each node against the query circle as fully
//!   contained / discarded / intersecting (Observation 1) and only descends
//!   into intersecting nodes;
//! * the **δ-query** performs a best-first search with the paper's two
//!   pruning rules — *density pruning* (Lemma 1: skip nodes whose `maxrho` is
//!   below the query point's density) and *distance pruning* (Lemma 2: skip
//!   nodes farther than the best candidate δ found so far).
//!
//! The pruning rules can be switched off individually via
//! [`DeltaQueryConfig`] for the ablation experiments, and every query can
//! report [`QueryStats`] (nodes visited/pruned, points scanned).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod grid;
pub mod kdtree;
pub mod quadtree;
pub mod query;
pub mod rtree;

#[cfg(test)]
pub(crate) mod testutil;

pub use common::{NodeId, SpatialPartition};
pub use grid::{GridConfig, GridIndex};
pub use kdtree::{KdTree, KdTreeConfig};
pub use quadtree::{Quadtree, QuadtreeConfig};
pub use query::{
    delta_query_recorded, eps_query, rho_delta_query_recorded, rho_query_recorded,
    weighted_rho_query_with_policy, DeltaQueryConfig, QueryStats,
};
pub use rtree::{RTree, RTreeConfig};
