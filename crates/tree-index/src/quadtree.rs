//! The Quadtree index (§4.1 of the paper).
//!
//! A point-region quadtree: every internal node splits its square region into
//! four equal quadrants; points live in the leaves. Construction inserts
//! points one by one, splitting a leaf when it exceeds its capacity — the
//! resulting shape (and therefore the height) depends on the data
//! distribution, which is exactly the weakness the paper contrasts with the
//! balanced R-tree.

use std::time::Duration;

use dpc_core::index::{validate_dc, validate_rho_len};
use dpc_core::{
    BoundingBox, Dataset, DeltaResult, DensityOrder, DpcIndex, ExecPolicy, IndexStats, Kernel,
    PointId, Result, Rho, TieBreak, Timer,
};

use crate::common::{NodeId, SpatialPartition};
use crate::query::{
    delta_query_with_policy, rho_delta_query_recorded, rho_query_with_policy, subtree_max_density,
    weighted_rho_query_with_policy, DeltaQueryConfig, QueryStats,
};

/// Configuration of a [`Quadtree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadtreeConfig {
    /// Maximum number of points a leaf holds before it is split.
    pub node_capacity: usize,
    /// Maximum tree depth; a leaf at this depth is never split (guards
    /// against unbounded recursion on coincident points).
    pub max_depth: usize,
    /// Tie-break rule of the density order.
    pub tie_break: TieBreak,
    /// Pruning configuration used by the δ-query of the [`DpcIndex`] impl.
    pub delta: DeltaQueryConfig,
}

impl Default for QuadtreeConfig {
    fn default() -> Self {
        QuadtreeConfig {
            node_capacity: 32,
            max_depth: 32,
            tie_break: TieBreak::default(),
            delta: DeltaQueryConfig::default(),
        }
    }
}

#[derive(Debug, Clone)]
enum NodeKind {
    Leaf { points: Vec<u32> },
    Internal { children: [NodeId; 4] },
}

#[derive(Debug, Clone)]
struct QuadNode {
    bbox: BoundingBox,
    depth: usize,
    count: usize,
    kind: NodeKind,
}

/// The quadtree index.
#[derive(Debug, Clone)]
pub struct Quadtree {
    dataset: Dataset,
    nodes: Vec<QuadNode>,
    root: Option<NodeId>,
    config: QuadtreeConfig,
    construction_time: Duration,
}

impl Quadtree {
    /// Builds a quadtree with the default configuration.
    pub fn build(dataset: &Dataset) -> Self {
        Self::with_config(dataset, &QuadtreeConfig::default())
    }

    /// Builds a quadtree with an explicit configuration.
    ///
    /// # Panics
    /// Panics if `node_capacity` is 0 or `max_depth` is 0.
    pub fn with_config(dataset: &Dataset, config: &QuadtreeConfig) -> Self {
        assert!(
            config.node_capacity > 0,
            "Quadtree: node capacity must be positive"
        );
        assert!(config.max_depth > 0, "Quadtree: max depth must be positive");
        let timer = Timer::start();
        let mut tree = Quadtree {
            dataset: dataset.clone(),
            nodes: Vec::new(),
            root: None,
            config: *config,
            construction_time: Duration::ZERO,
        };
        if !dataset.is_empty() {
            let root_bbox = dataset.bounding_box();
            tree.nodes.push(QuadNode {
                bbox: root_bbox,
                depth: 0,
                count: 0,
                kind: NodeKind::Leaf { points: Vec::new() },
            });
            tree.root = Some(0);
            for p in 0..dataset.len() {
                tree.insert(p);
            }
        }
        tree.construction_time = timer.elapsed();
        tree
    }

    /// The configuration used to build the tree.
    pub fn config(&self) -> &QuadtreeConfig {
        &self.config
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Leaf { .. }))
            .count()
    }

    /// ρ-query that also reports traversal statistics.
    pub fn rho_with_stats(&self, dc: f64) -> Result<(Vec<Rho>, QueryStats)> {
        self.rho_with_stats_policy(dc, ExecPolicy::Sequential)
    }

    /// [`rho_with_stats`](Self::rho_with_stats) under an explicit execution
    /// policy (bit-identical results at every thread count).
    pub fn rho_with_stats_policy(
        &self,
        dc: f64,
        policy: ExecPolicy,
    ) -> Result<(Vec<Rho>, QueryStats)> {
        validate_dc(dc)?;
        Ok(rho_query_with_policy(self, &self.dataset, dc, policy))
    }

    /// δ-query with an explicit pruning configuration, reporting traversal
    /// statistics. This is the entry point of the pruning-ablation benchmark.
    pub fn delta_with_config(
        &self,
        dc: f64,
        rho: &[Rho],
        config: &DeltaQueryConfig,
    ) -> Result<(DeltaResult, QueryStats)> {
        self.delta_with_config_policy(dc, rho, config, ExecPolicy::Sequential)
    }

    /// [`delta_with_config`](Self::delta_with_config) under an explicit
    /// execution policy.
    pub fn delta_with_config_policy(
        &self,
        dc: f64,
        rho: &[Rho],
        config: &DeltaQueryConfig,
        policy: ExecPolicy,
    ) -> Result<(DeltaResult, QueryStats)> {
        validate_dc(dc)?;
        validate_rho_len(rho, self.dataset.len())?;
        let order = DensityOrder::with_tie_break(rho, self.config.tie_break);
        let maxrho = subtree_max_density(self, rho);
        Ok(delta_query_with_policy(
            self,
            &self.dataset,
            &order,
            &maxrho,
            config,
            policy,
        ))
    }

    /// Inserts point `p`, splitting leaves as needed.
    fn insert(&mut self, p: PointId) {
        let point = self.dataset.point(p);
        let mut node = self.root.expect("insert called on an empty tree");
        loop {
            self.nodes[node].count += 1;
            if let NodeKind::Leaf { points } = &self.nodes[node].kind {
                let at_capacity = points.len() >= self.config.node_capacity;
                let at_max_depth = self.nodes[node].depth >= self.config.max_depth;
                if !at_capacity || at_max_depth {
                    if let NodeKind::Leaf { points } = &mut self.nodes[node].kind {
                        points.push(p as u32);
                    }
                    return;
                }
                // Full leaf above the depth limit: split, then re-dispatch
                // below (the node is internal afterwards).
                self.split(node);
            }
            let bbox = self.nodes[node].bbox;
            let quadrant = quadrant_of(&bbox, point);
            match &self.nodes[node].kind {
                NodeKind::Internal { children } => node = children[quadrant],
                NodeKind::Leaf { .. } => {
                    unreachable!("split must turn the node into an internal node")
                }
            }
        }
    }

    /// Splits a full leaf into four child leaves and redistributes its points.
    fn split(&mut self, node: NodeId) {
        let (bbox, depth, old_points) = match &mut self.nodes[node].kind {
            NodeKind::Leaf { points } => {
                let taken = std::mem::take(points);
                (self.nodes[node].bbox, self.nodes[node].depth, taken)
            }
            NodeKind::Internal { .. } => panic!("split called on an internal node"),
        };
        let quadrants = bbox.quadrants();
        let first_child = self.nodes.len();
        for q in quadrants {
            self.nodes.push(QuadNode {
                bbox: q,
                depth: depth + 1,
                count: 0,
                kind: NodeKind::Leaf { points: Vec::new() },
            });
        }
        let children = [
            first_child,
            first_child + 1,
            first_child + 2,
            first_child + 3,
        ];
        for pid in old_points {
            let point = self.dataset.point(pid as PointId);
            let child = children[quadrant_of(&bbox, point)];
            self.nodes[child].count += 1;
            if let NodeKind::Leaf { points } = &mut self.nodes[child].kind {
                points.push(pid);
            }
        }
        self.nodes[node].kind = NodeKind::Internal { children };
    }
}

/// Index of the quadrant of `bbox` that contains `point`, consistent with
/// [`BoundingBox::quadrants`] (`[SW, SE, NW, NE]`). Points exactly on the
/// centre lines go east / north.
fn quadrant_of(bbox: &BoundingBox, point: dpc_core::Point) -> usize {
    let c = bbox.center();
    let east = point.x >= c.x;
    let north = point.y >= c.y;
    match (north, east) {
        (false, false) => 0,
        (false, true) => 1,
        (true, false) => 2,
        (true, true) => 3,
    }
}

impl SpatialPartition for Quadtree {
    fn root(&self) -> Option<NodeId> {
        self.root
    }

    fn bbox(&self, node: NodeId) -> BoundingBox {
        self.nodes[node].bbox
    }

    fn point_count(&self, node: NodeId) -> usize {
        self.nodes[node].count
    }

    fn children(&self, node: NodeId) -> &[NodeId] {
        match &self.nodes[node].kind {
            NodeKind::Internal { children } => children,
            NodeKind::Leaf { .. } => &[],
        }
    }

    fn points(&self, node: NodeId) -> &[u32] {
        match &self.nodes[node].kind {
            NodeKind::Leaf { points } => points,
            NodeKind::Internal { .. } => &[],
        }
    }

    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

impl DpcIndex for Quadtree {
    fn name(&self) -> &'static str {
        "quadtree"
    }

    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn rho(&self, dc: f64) -> Result<Vec<Rho>> {
        self.rho_with_stats(dc).map(|(rho, _)| rho)
    }

    fn delta(&self, dc: f64, rho: &[Rho]) -> Result<DeltaResult> {
        self.delta_with_config(dc, rho, &self.config.delta)
            .map(|(result, _)| result)
    }

    fn rho_with_policy(&self, dc: f64, policy: ExecPolicy) -> Result<Vec<Rho>> {
        self.rho_with_stats_policy(dc, policy).map(|(rho, _)| rho)
    }

    fn rho_kernel_with_policy(
        &self,
        dc: f64,
        kernel: Kernel,
        policy: ExecPolicy,
    ) -> Result<Vec<Rho>> {
        if kernel.is_cutoff() {
            return self.rho_with_policy(dc, policy);
        }
        validate_dc(dc)?;
        kernel.validate()?;
        Ok(weighted_rho_query_with_policy(self, &self.dataset, dc, kernel, policy).0)
    }

    fn delta_with_policy(&self, dc: f64, rho: &[Rho], policy: ExecPolicy) -> Result<DeltaResult> {
        self.delta_with_config_policy(dc, rho, &self.config.delta, policy)
            .map(|(result, _)| result)
    }

    fn rho_delta_observed(
        &self,
        dc: f64,
        policy: ExecPolicy,
        rec: &dyn dpc_obs::Recorder,
    ) -> Result<(Vec<Rho>, DeltaResult)> {
        validate_dc(dc)?;
        Ok(rho_delta_query_recorded(
            self,
            &self.dataset,
            dc,
            self.config.tie_break,
            &self.config.delta,
            policy,
            rec,
        ))
    }

    fn memory_bytes(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<QuadNode>()
                    + match &n.kind {
                        NodeKind::Leaf { points } => points.capacity() * std::mem::size_of::<u32>(),
                        NodeKind::Internal { .. } => 0,
                    }
            })
            .sum();
        node_bytes + self.dataset.memory_bytes()
    }

    fn stats(&self) -> IndexStats {
        IndexStats::new(self.construction_time, self.memory_bytes())
            .with_counter("nodes", self.num_nodes() as u64)
            .with_counter("leaves", self.leaf_count() as u64)
            .with_counter("height", self.height() as u64)
    }

    fn tie_break(&self) -> TieBreak {
        self.config.tie_break
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_partition_invariants;
    use dpc_baseline::LeanDpc;
    use dpc_datasets::generators::{checkins, query, s1, CheckinConfig};

    fn assert_matches_baseline(data: &Dataset, tree: &Quadtree, dc: f64) {
        let baseline = LeanDpc::build(data);
        let (r1, d1) = tree.rho_delta(dc).unwrap();
        let (r2, d2) = baseline.rho_delta(dc).unwrap();
        assert_eq!(r1, r2, "rho mismatch at dc = {dc}");
        assert_eq!(d1.mu, d2.mu, "mu mismatch at dc = {dc}");
        for p in 0..data.len() {
            assert!(
                (d1.delta(p) - d2.delta(p)).abs() < 1e-9,
                "dc = {dc}, p = {p}"
            );
        }
    }

    #[test]
    fn structure_invariants_hold() {
        let data = s1(101, 0.1).into_dataset(); // 500 points
        let tree = Quadtree::build(&data);
        check_partition_invariants(&tree, &data);
        assert!(tree.leaf_count() > 1);
        assert!(tree.height() > 1);
    }

    #[test]
    fn matches_baseline_on_s1() {
        let data = s1(103, 0.06).into_dataset(); // 300 points
        let tree = Quadtree::build(&data);
        for dc in [5_000.0, 30_000.0, 200_000.0, 1_500_000.0] {
            assert_matches_baseline(&data, &tree, dc);
        }
    }

    #[test]
    fn matches_baseline_on_skewed_checkins() {
        let data = checkins(400, &CheckinConfig::gowalla(), 7).into_dataset();
        let tree = Quadtree::build(&data);
        for dc in [0.005, 0.05, 1.0] {
            assert_matches_baseline(&data, &tree, dc);
        }
    }

    #[test]
    fn matches_baseline_with_tiny_node_capacity() {
        let data = query(107, 0.004).into_dataset(); // 200 points
        let config = QuadtreeConfig {
            node_capacity: 2,
            ..Default::default()
        };
        let tree = Quadtree::with_config(&data, &config);
        check_partition_invariants(&tree, &data);
        assert_matches_baseline(&data, &tree, 0.02);
    }

    #[test]
    fn handles_coincident_points_via_max_depth() {
        // 100 identical points would split forever without the depth guard.
        let data = Dataset::new(vec![dpc_core::Point::new(1.0, 1.0); 100]);
        let config = QuadtreeConfig {
            node_capacity: 4,
            max_depth: 6,
            ..Default::default()
        };
        let tree = Quadtree::with_config(&data, &config);
        check_partition_invariants(&tree, &data);
        assert!(tree.height() <= 7);
        let rho = tree.rho(0.5).unwrap();
        assert!(rho.iter().all(|&r| r == 99.0));
    }

    #[test]
    fn pruning_reduces_work_but_not_results() {
        let data = s1(109, 0.1).into_dataset(); // 500 points
        let tree = Quadtree::build(&data);
        let dc = 30_000.0;
        let rho = tree.rho(dc).unwrap();
        let (d_pruned, s_pruned) = tree
            .delta_with_config(dc, &rho, &DeltaQueryConfig::default())
            .unwrap();
        let (d_full, s_full) = tree
            .delta_with_config(dc, &rho, &DeltaQueryConfig::no_pruning())
            .unwrap();
        assert_eq!(d_pruned.mu, d_full.mu);
        assert!(s_pruned.points_scanned < s_full.points_scanned);
        assert!(s_pruned.nodes_visited < s_full.nodes_visited);
    }

    #[test]
    fn rho_with_largest_dc_counts_everything_cheaply() {
        let data = s1(113, 0.06).into_dataset();
        let tree = Quadtree::build(&data);
        let diameter = data.bbox_diameter() * 1.01;
        let (rho, stats) = tree.rho_with_stats(diameter).unwrap();
        assert!(rho.iter().all(|&r| r as usize == data.len() - 1));
        // The root is fully contained for every query point: no leaf scans.
        assert_eq!(stats.points_scanned, 0);
    }

    #[test]
    fn memory_is_far_below_list_index_scale() {
        let data = s1(127, 0.2).into_dataset(); // 1000 points
        let tree = Quadtree::build(&data);
        // The list index would store ~n^2 = 10^6 entries of 16 bytes; the
        // quadtree must stay well under a tenth of that.
        assert!(tree.memory_bytes() < 1_000_000);
    }

    #[test]
    fn stats_counters_present() {
        let data = s1(131, 0.02).into_dataset();
        let tree = Quadtree::build(&data);
        let stats = tree.stats();
        assert!(stats.counter("nodes").unwrap() >= 1);
        assert!(stats.counter("leaves").unwrap() >= 1);
        assert!(stats.counter("height").unwrap() >= 1);
    }

    #[test]
    fn empty_and_single_point_trees() {
        let empty = Quadtree::build(&Dataset::new(vec![]));
        assert_eq!(empty.num_nodes(), 0);
        assert!(empty.rho(1.0).unwrap().is_empty());

        let single = Quadtree::build(&Dataset::new(vec![dpc_core::Point::new(3.0, 4.0)]));
        let (rho, deltas) = single.rho_delta(1.0).unwrap();
        assert_eq!(rho, vec![0.0]);
        assert_eq!(deltas.mu(0), None);
        assert_eq!(deltas.delta(0), 0.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let data = s1(3, 0.01).into_dataset();
        let tree = Quadtree::build(&data);
        assert!(tree.rho(0.0).is_err());
        assert!(tree.delta(1.0, &[]).is_err());
    }
}
