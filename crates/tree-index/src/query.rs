//! The generic ρ- and δ-query algorithms shared by all tree indices.
//!
//! These are Algorithms 5 and 6 of the paper, written once against
//! [`SpatialPartition`]:
//!
//! * **ρ-query** (Algorithm 5): depth-first traversal that classifies every
//!   node against the query circle `(p, dc)` — *fully contained* nodes
//!   contribute their point count `nc` wholesale, *discarded* nodes
//!   contribute nothing, and only *intersecting* nodes are descended into
//!   (Observation 1). The traversal is sqrt-free: every comparison is made
//!   between squared distances and a precomputed `dc²` (see the safety
//!   discussion in [`dpc_core::metric`]).
//! * **δ-query** (Algorithm 6): best-first search over nodes ordered by
//!   `dmin(p, node)`, with **density pruning** (Lemma 1: a node whose
//!   `maxrho` is below `ρ(p)` cannot contain the dependent neighbour) and
//!   **distance pruning** (Lemma 2: a node farther than the best candidate δ
//!   cannot improve it). The δ path deliberately keeps *true* metric
//!   distances — Lemma 2 and everything downstream of δ combine distances
//!   additively, which squared distances (no triangle inequality) do not
//!   support.
//!
//! Both queries run per point with no data dependency between points, so
//! they parallelise over the chunked engine of [`dpc_core::exec`]: pass an
//! [`ExecPolicy`] to [`rho_query_with_policy`] / [`delta_query_with_policy`]
//! and each worker thread gets its own [`QueryScratch`] — a reusable node
//! stack, best-first heap and [`QueryStats`] — merged deterministically after
//! the join. Results are bit-identical at every thread count.
//!
//! Both pruning rules can be disabled individually through
//! [`DeltaQueryConfig`] — that is what the pruning-ablation benchmark
//! measures — and both queries can report [`QueryStats`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dpc_core::{
    exec, Dataset, DeltaResult, DensityOrder, ExecPolicy, Kernel, Point, PointId, Rho, TieBreak,
};

use crate::common::{NodeId, SpatialPartition};

/// Counters describing how much work a query did. Used by the ablation
/// benchmarks and by tests asserting that pruning actually prunes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Nodes popped/descended into.
    pub nodes_visited: u64,
    /// Nodes skipped because they lie entirely outside the query circle
    /// (ρ-query only).
    pub nodes_discarded: u64,
    /// Nodes counted wholesale because they lie entirely inside the query
    /// circle (ρ-query only).
    pub nodes_fully_contained: u64,
    /// Nodes skipped by density pruning (δ-query only).
    pub nodes_density_pruned: u64,
    /// Nodes skipped by distance pruning (δ-query only).
    pub nodes_distance_pruned: u64,
    /// Individual points compared against the query point.
    pub points_scanned: u64,
}

impl QueryStats {
    /// Adds another stats record into this one.
    pub fn merge(&mut self, other: &QueryStats) {
        self.nodes_visited += other.nodes_visited;
        self.nodes_discarded += other.nodes_discarded;
        self.nodes_fully_contained += other.nodes_fully_contained;
        self.nodes_density_pruned += other.nodes_density_pruned;
        self.nodes_distance_pruned += other.nodes_distance_pruned;
        self.points_scanned += other.points_scanned;
    }

    /// Emits every counter into `rec` as `<prefix>.<counter>` metrics, so
    /// traversal statistics show up next to phase timings in a snapshot.
    ///
    /// Does nothing (and allocates nothing) when the recorder is disabled.
    pub fn publish(&self, rec: &dyn dpc_obs::Recorder, prefix: &str) {
        if !rec.enabled() {
            return;
        }
        rec.counter(&format!("{prefix}.nodes_visited"), self.nodes_visited);
        rec.counter(&format!("{prefix}.nodes_discarded"), self.nodes_discarded);
        rec.counter(
            &format!("{prefix}.nodes_fully_contained"),
            self.nodes_fully_contained,
        );
        rec.counter(
            &format!("{prefix}.nodes_density_pruned"),
            self.nodes_density_pruned,
        );
        rec.counter(
            &format!("{prefix}.nodes_distance_pruned"),
            self.nodes_distance_pruned,
        );
        rec.counter(&format!("{prefix}.points_scanned"), self.points_scanned);
    }
}

/// Per-worker reusable traversal state: the depth-first stack of the ρ-query,
/// the best-first heap of the δ-query, and the traversal counters.
///
/// One scratch lives per worker thread (or one for the whole query when
/// sequential) and is reused across every point of that worker's chunk, so
/// the per-point hot loops allocate nothing.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Counters accumulated over every query this scratch served.
    pub stats: QueryStats,
    stack: Vec<NodeId>,
    heap: BinaryHeap<Reverse<(OrdF64, NodeId)>>,
    pairs: Vec<(PointId, f64)>,
}

impl QueryScratch {
    /// A fresh scratch with empty stack, heap and zeroed counters.
    pub fn new() -> Self {
        QueryScratch::default()
    }
}

/// Configuration of the δ-query; both pruning rules default to enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaQueryConfig {
    /// Lemma 1: skip subtrees whose maximum density is below the query
    /// point's density.
    pub density_pruning: bool,
    /// Lemma 2: skip subtrees whose minimum distance exceeds the best
    /// candidate δ found so far.
    pub distance_pruning: bool,
}

impl Default for DeltaQueryConfig {
    fn default() -> Self {
        DeltaQueryConfig {
            density_pruning: true,
            distance_pruning: true,
        }
    }
}

impl DeltaQueryConfig {
    /// Configuration with every pruning rule disabled (exhaustive best-first
    /// search); the ablation baseline.
    pub fn no_pruning() -> Self {
        DeltaQueryConfig {
            density_pruning: false,
            distance_pruning: false,
        }
    }
}

/// Computes ρ for every point of the dataset.
pub fn rho_query<T: SpatialPartition + Sync + ?Sized>(
    tree: &T,
    dataset: &Dataset,
    dc: f64,
) -> Vec<Rho> {
    rho_query_with_stats(tree, dataset, dc).0
}

/// [`rho_query`] that also returns aggregate traversal statistics.
pub fn rho_query_with_stats<T: SpatialPartition + Sync + ?Sized>(
    tree: &T,
    dataset: &Dataset,
    dc: f64,
) -> (Vec<Rho>, QueryStats) {
    rho_query_with_policy(tree, dataset, dc, ExecPolicy::Sequential)
}

/// [`rho_query`] under an explicit execution policy: the per-point queries
/// are partitioned across worker threads, each with its own [`QueryScratch`],
/// and the per-worker statistics are merged in chunk order after the join.
/// Results are bit-identical to the sequential query.
pub fn rho_query_with_policy<T: SpatialPartition + Sync + ?Sized>(
    tree: &T,
    dataset: &Dataset,
    dc: f64,
    policy: ExecPolicy,
) -> (Vec<Rho>, QueryStats) {
    let mut rho = vec![0 as Rho; dataset.len()];
    let scratches = exec::fill_slice(&mut rho, policy, QueryScratch::new, |p, scratch| {
        rho_one(tree, dataset, p, dc, scratch)
    });
    let mut stats = QueryStats::default();
    for s in &scratches {
        stats.merge(&s.stats);
    }
    (rho, stats)
}

/// [`rho_query_with_policy`] reporting telemetry to `rec`: one
/// `query.rho.chunk` span per worker plus the aggregated [`QueryStats`]
/// counters under the `query.rho` prefix. Results are bit-identical to the
/// unrecorded query.
pub fn rho_query_recorded<T: SpatialPartition + Sync + ?Sized>(
    tree: &T,
    dataset: &Dataset,
    dc: f64,
    policy: ExecPolicy,
    rec: &dyn dpc_obs::Recorder,
) -> (Vec<Rho>, QueryStats) {
    let mut rho = vec![0 as Rho; dataset.len()];
    let scratches = exec::fill_slice_recorded(
        &mut rho,
        policy,
        rec,
        "query.rho.chunk",
        QueryScratch::new,
        |p, scratch| rho_one(tree, dataset, p, dc, scratch),
    );
    let mut stats = QueryStats::default();
    for s in &scratches {
        stats.merge(&s.stats);
    }
    stats.publish(rec, "query.rho");
    (rho, stats)
}

/// ρ of a single point: counts points strictly within `dc`, excluding the
/// point itself. Sqrt-free: all comparisons are against `dc²`.
pub fn rho_one<T: SpatialPartition + ?Sized>(
    tree: &T,
    dataset: &Dataset,
    p: PointId,
    dc: f64,
    scratch: &mut QueryScratch,
) -> Rho {
    let Some(root) = tree.root() else { return 0.0 };
    let query = dataset.point(p);
    let pts = dataset.points();
    let dc2 = dc * dc;
    let stats = &mut scratch.stats;
    // Count all points (including p itself, which is trivially within dc of
    // itself) and subtract 1 at the end; this lets fully-contained nodes be
    // added wholesale without worrying about which node holds p.
    let mut count = 0usize;
    let stack = &mut scratch.stack;
    stack.clear();
    stack.push(root);
    while let Some(node) = stack.pop() {
        stats.nodes_visited += 1;
        let bbox = tree.bbox(node);
        if bbox.min_dist_squared(query) >= dc2 {
            stats.nodes_discarded += 1;
            continue;
        }
        if bbox.max_dist_squared(query) < dc2 {
            stats.nodes_fully_contained += 1;
            count += tree.point_count(node);
            continue;
        }
        if tree.is_leaf(node) {
            for &q in tree.points(node) {
                stats.points_scanned += 1;
                if pts[q as usize].distance_squared(&query) < dc2 {
                    count += 1;
                }
            }
        } else {
            stack.extend_from_slice(tree.children(node));
        }
    }
    // `count` includes p itself (distance 0 < dc always holds for dc > 0).
    (count.saturating_sub(1)) as Rho
}

/// Computes kernel-weighted ρ for every point under an explicit execution
/// policy — the tree-accelerated implementation behind every tree index's
/// [`dpc_core::DpcIndex::rho_kernel_with_policy`] override for non-cutoff
/// kernels.
///
/// Bit-identical to [`dpc_core::index::weighted_rho_scan`] at every thread
/// count: each point's mass is summed in ascending neighbour-id order with
/// the same `dx² + dy²` distance arithmetic, so the traversal only changes
/// *which* pairs are examined, never the value produced.
pub fn weighted_rho_query_with_policy<T: SpatialPartition + Sync + ?Sized>(
    tree: &T,
    dataset: &Dataset,
    dc: f64,
    kernel: Kernel,
    policy: ExecPolicy,
) -> (Vec<Rho>, QueryStats) {
    let mut rho = vec![0.0 as Rho; dataset.len()];
    let scratches = exec::fill_slice(&mut rho, policy, QueryScratch::new, |p, scratch| {
        weighted_rho_one(tree, dataset, p, dc, kernel, scratch)
    });
    let mut stats = QueryStats::default();
    for s in &scratches {
        stats.merge(&s.stats);
    }
    (rho, stats)
}

/// Kernel-weighted ρ of a single point: sums `w(d)` over all points strictly
/// within `dc`, excluding the point itself.
///
/// Unlike [`rho_one`] there is no fully-contained shortcut — every in-range
/// neighbour's distance feeds the kernel — so the traversal mirrors
/// [`eps_query`]: prune nodes entirely outside the circle (and nodes emptied
/// by deletions), scan surviving leaves. Collected `(id, d²)` pairs are
/// sorted by id and summed ascending, the canonical order of
/// [`dpc_core::index::weighted_rho_scan`], so the result is bit-identical to
/// the brute-force scan.
pub fn weighted_rho_one<T: SpatialPartition + ?Sized>(
    tree: &T,
    dataset: &Dataset,
    p: PointId,
    dc: f64,
    kernel: Kernel,
    scratch: &mut QueryScratch,
) -> Rho {
    let Some(root) = tree.root() else { return 0.0 };
    let query = dataset.point(p);
    let pts = dataset.points();
    let dc2 = dc * dc;
    let stats = &mut scratch.stats;
    let pairs = &mut scratch.pairs;
    pairs.clear();
    let stack = &mut scratch.stack;
    stack.clear();
    stack.push(root);
    while let Some(node) = stack.pop() {
        stats.nodes_visited += 1;
        if tree.point_count(node) == 0 || tree.bbox(node).min_dist_squared(query) >= dc2 {
            stats.nodes_discarded += 1;
            continue;
        }
        if tree.is_leaf(node) {
            for &q in tree.points(node) {
                let q = q as PointId;
                if q == p {
                    continue;
                }
                stats.points_scanned += 1;
                let d2 = pts[q].distance_squared(&query);
                if d2 < dc2 {
                    pairs.push((q, d2));
                }
            }
        } else {
            stack.extend_from_slice(tree.children(node));
        }
    }
    pairs.sort_unstable_by_key(|&(q, _)| q);
    let mut mass = 0.0f64;
    for &(_, d2) in pairs.iter() {
        mass += kernel.weight_from_sq(d2);
    }
    mass
}

/// Ids of all points strictly within `eps` of `center`, ascending — the
/// ε-range query behind [`dpc_core::UpdatableIndex::eps_neighbors`], written
/// once against [`SpatialPartition`] so every tree index answers it through
/// its own structure.
///
/// The traversal mirrors the ρ-query's pruning (skip nodes entirely outside
/// the query circle, sqrt-free comparisons against `eps²`) but must visit
/// every surviving leaf to collect ids, so there is no fully-contained
/// shortcut. Nodes with a zero point count (emptied by deletions but not yet
/// compacted) are skipped outright, which is what keeps deleted points
/// invisible regardless of how conservative the node's stale bounding box is.
pub fn eps_query<T: SpatialPartition + ?Sized>(
    tree: &T,
    dataset: &Dataset,
    center: Point,
    eps: f64,
) -> Vec<PointId> {
    let mut out = Vec::new();
    let Some(root) = tree.root() else {
        return out;
    };
    let pts = dataset.points();
    let eps2 = eps * eps;
    let mut stack = vec![root];
    while let Some(node) = stack.pop() {
        if tree.point_count(node) == 0 || tree.bbox(node).min_dist_squared(center) >= eps2 {
            continue;
        }
        if tree.is_leaf(node) {
            for &q in tree.points(node) {
                if pts[q as usize].distance_squared(&center) < eps2 {
                    out.push(q as PointId);
                }
            }
        } else {
            stack.extend_from_slice(tree.children(node));
        }
    }
    out.sort_unstable();
    out
}

/// Computes, for every node, the maximum density of any point stored in its
/// subtree (the `maxrho` annotation of Lemma 1). Returned as a vector indexed
/// by [`NodeId`]; nodes with no points get 0.
pub fn subtree_max_density<T: SpatialPartition + ?Sized>(tree: &T, rho: &[Rho]) -> Vec<Rho> {
    let mut maxrho = vec![0 as Rho; tree.num_nodes()];
    let Some(root) = tree.root() else {
        return maxrho;
    };
    // Iterative post-order: process children before parents.
    let mut order: Vec<NodeId> = Vec::with_capacity(tree.num_nodes());
    let mut stack = vec![root];
    while let Some(node) = stack.pop() {
        order.push(node);
        stack.extend_from_slice(tree.children(node));
    }
    for &node in order.iter().rev() {
        let mut best = 0 as Rho;
        for &q in tree.points(node) {
            best = best.max(rho[q as usize]);
        }
        for &c in tree.children(node) {
            best = best.max(maxrho[c]);
        }
        maxrho[node] = best;
    }
    maxrho
}

/// Computes δ and µ for every point of the dataset.
///
/// `maxrho` must come from [`subtree_max_density`] for the same `rho` the
/// `order` was built from.
pub fn delta_query<T: SpatialPartition + Sync + ?Sized>(
    tree: &T,
    dataset: &Dataset,
    order: &DensityOrder<'_>,
    maxrho: &[Rho],
    config: &DeltaQueryConfig,
) -> DeltaResult {
    delta_query_with_stats(tree, dataset, order, maxrho, config).0
}

/// [`delta_query`] that also returns aggregate traversal statistics.
pub fn delta_query_with_stats<T: SpatialPartition + Sync + ?Sized>(
    tree: &T,
    dataset: &Dataset,
    order: &DensityOrder<'_>,
    maxrho: &[Rho],
    config: &DeltaQueryConfig,
) -> (DeltaResult, QueryStats) {
    delta_query_with_policy(tree, dataset, order, maxrho, config, ExecPolicy::Sequential)
}

/// [`delta_query`] under an explicit execution policy; see
/// [`rho_query_with_policy`] for the parallel contract.
pub fn delta_query_with_policy<T: SpatialPartition + Sync + ?Sized>(
    tree: &T,
    dataset: &Dataset,
    order: &DensityOrder<'_>,
    maxrho: &[Rho],
    config: &DeltaQueryConfig,
    policy: ExecPolicy,
) -> (DeltaResult, QueryStats) {
    let n = dataset.len();
    debug_assert_eq!(order.len(), n);
    let mut result = DeltaResult::unset(n);
    let scratches = exec::fill_slice_pair(
        &mut result.delta,
        &mut result.mu,
        policy,
        QueryScratch::new,
        |p, delta_slot, mu_slot, scratch| {
            let (delta, mu) = delta_one(tree, dataset, order, maxrho, p, config, scratch);
            *delta_slot = delta;
            *mu_slot = mu;
        },
    );
    let mut stats = QueryStats::default();
    for s in &scratches {
        stats.merge(&s.stats);
    }
    (result, stats)
}

/// [`delta_query_with_policy`] reporting telemetry to `rec`: one
/// `query.delta.chunk` span per worker plus the aggregated [`QueryStats`]
/// counters under the `query.delta` prefix. Results are bit-identical to the
/// unrecorded query.
pub fn delta_query_recorded<T: SpatialPartition + Sync + ?Sized>(
    tree: &T,
    dataset: &Dataset,
    order: &DensityOrder<'_>,
    maxrho: &[Rho],
    config: &DeltaQueryConfig,
    policy: ExecPolicy,
    rec: &dyn dpc_obs::Recorder,
) -> (DeltaResult, QueryStats) {
    let n = dataset.len();
    debug_assert_eq!(order.len(), n);
    let mut result = DeltaResult::unset(n);
    let scratches = exec::fill_slice_pair_recorded(
        &mut result.delta,
        &mut result.mu,
        policy,
        rec,
        "query.delta.chunk",
        QueryScratch::new,
        |p, delta_slot, mu_slot, scratch| {
            let (delta, mu) = delta_one(tree, dataset, order, maxrho, p, config, scratch);
            *delta_slot = delta;
            *mu_slot = mu;
        },
    );
    let mut stats = QueryStats::default();
    for s in &scratches {
        stats.merge(&s.stats);
    }
    stats.publish(rec, "query.delta");
    (result, stats)
}

/// The full ρ→δ query pipeline with telemetry: recorded ρ-query, density
/// order, `maxrho` annotation, recorded δ-query. This is the single
/// implementation behind every tree index's
/// [`dpc_core::DpcIndex::rho_delta_observed`] override.
#[allow(clippy::too_many_arguments)]
pub fn rho_delta_query_recorded<T: SpatialPartition + Sync + ?Sized>(
    tree: &T,
    dataset: &Dataset,
    dc: f64,
    tie_break: TieBreak,
    config: &DeltaQueryConfig,
    policy: ExecPolicy,
    rec: &dyn dpc_obs::Recorder,
) -> (Vec<Rho>, DeltaResult) {
    let (rho, _) = rho_query_recorded(tree, dataset, dc, policy, rec);
    let order = DensityOrder::with_tie_break(&rho, tie_break);
    let maxrho = subtree_max_density(tree, &rho);
    let (delta, _) = delta_query_recorded(tree, dataset, &order, &maxrho, config, policy, rec);
    (rho, delta)
}

/// Ordered f64 wrapper so `BinaryHeap` can prioritise by `dmin`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// δ and µ of a single point — the best-first search of Algorithm 6.
///
/// All node and point comparisons here use *true* Euclidean distances: the
/// candidate δ is consumed by triangle-inequality-based reasoning downstream,
/// which squared distances cannot serve (see [`dpc_core::metric`]).
pub fn delta_one<T: SpatialPartition + ?Sized>(
    tree: &T,
    dataset: &Dataset,
    order: &DensityOrder<'_>,
    maxrho: &[Rho],
    p: PointId,
    config: &DeltaQueryConfig,
    scratch: &mut QueryScratch,
) -> (f64, Option<PointId>) {
    let Some(root) = tree.root() else {
        return (0.0, None);
    };
    let query = dataset.point(p);
    let pts = dataset.points();
    let rho_p = order.rho()[p];
    let stats = &mut scratch.stats;

    let mut best_d = f64::INFINITY;
    let mut best_q: Option<PointId> = None;

    // Min-heap on dmin: the node most likely to contain the dependent
    // neighbour is explored first, so the candidate δ shrinks quickly and
    // distance pruning bites early. The heap is per-worker scratch — cleared
    // (it may hold leftovers from an early-terminated previous query) but
    // never re-allocated.
    let heap = &mut scratch.heap;
    heap.clear();
    heap.push(Reverse((OrdF64(tree.bbox(root).min_dist(query)), root)));

    while let Some(Reverse((OrdF64(dmin), node))) = heap.pop() {
        if config.distance_pruning && dmin > best_d {
            // The heap is ordered by dmin, so every remaining node is at
            // least this far: nothing can improve the candidate any more.
            stats.nodes_distance_pruned += heap.len() as u64 + 1;
            break;
        }
        stats.nodes_visited += 1;
        if tree.is_leaf(node) {
            for &q in tree.points(node) {
                let q = q as PointId;
                stats.points_scanned += 1;
                if q == p || !order.is_denser(q, p) {
                    continue;
                }
                let d = pts[q].distance(&query);
                // Lexicographic (distance, id) comparison keeps µ identical
                // to the list-based indices and the baseline when several
                // denser neighbours are equidistant.
                if d < best_d || (d == best_d && best_q.is_none_or(|b| q < b)) {
                    best_d = d;
                    best_q = Some(q);
                }
            }
        } else {
            for &c in tree.children(node) {
                if config.density_pruning && maxrho[c] < rho_p {
                    stats.nodes_density_pruned += 1;
                    continue;
                }
                let child_dmin = tree.bbox(c).min_dist(query);
                if config.distance_pruning && child_dmin > best_d {
                    stats.nodes_distance_pruned += 1;
                    continue;
                }
                heap.push(Reverse((OrdF64(child_dmin), c)));
            }
        }
    }

    match best_q {
        Some(q) => (best_d, Some(q)),
        None => {
            // No denser point exists: p is the global peak. Its δ is the
            // maximum distance to any other point (original DPC convention).
            // Maximising the squared distance and taking one root at the end
            // gives exactly the same value (sqrt is monotone) without a root
            // per point.
            let max_sq = pts
                .iter()
                .map(|q| q.distance_squared(&query))
                .fold(0.0f64, f64::max);
            (max_sq.sqrt(), None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_partition_invariants;
    use crate::testutil::FlatPartition;
    use dpc_core::naive_reference::NaiveReferenceIndex;
    use dpc_core::DpcIndex;
    use dpc_datasets::generators::{query as query_dataset, s1};

    fn reference(data: &Dataset, dc: f64) -> (Vec<Rho>, DeltaResult) {
        NaiveReferenceIndex::build(data).rho_delta(dc).unwrap()
    }

    #[test]
    fn generic_queries_match_reference_on_flat_partition() {
        let data = s1(7, 0.04).into_dataset(); // 200 points
        let part = FlatPartition::strips(&data, 120_000.0);
        check_partition_invariants(&part, &data);
        for dc in [10_000.0, 60_000.0, 400_000.0] {
            let (ref_rho, ref_delta) = reference(&data, dc);
            let rho = rho_query(&part, &data, dc);
            assert_eq!(rho, ref_rho, "dc = {dc}");
            let order = DensityOrder::new(&rho);
            let maxrho = subtree_max_density(&part, &rho);
            let deltas = delta_query(&part, &data, &order, &maxrho, &DeltaQueryConfig::default());
            assert_eq!(deltas.mu, ref_delta.mu, "dc = {dc}");
            for p in 0..data.len() {
                assert!((deltas.delta(p) - ref_delta.delta(p)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn parallel_queries_are_bit_identical_to_sequential() {
        let data = query_dataset(3, 0.004).into_dataset(); // 200 points
        let part = FlatPartition::strips(&data, 0.05);
        let dc = 0.02;
        let (seq_rho, seq_rho_stats) = rho_query_with_stats(&part, &data, dc);
        let order = DensityOrder::new(&seq_rho);
        let maxrho = subtree_max_density(&part, &seq_rho);
        let config = DeltaQueryConfig::default();
        let (seq_delta, seq_delta_stats) =
            delta_query_with_stats(&part, &data, &order, &maxrho, &config);
        for threads in [1usize, 2, 3, 7, 64] {
            let policy = ExecPolicy::Threads(threads);
            let (rho, rho_stats) = rho_query_with_policy(&part, &data, dc, policy);
            assert_eq!(rho, seq_rho, "threads = {threads}");
            assert_eq!(rho_stats, seq_rho_stats, "threads = {threads}");
            let (delta, delta_stats) =
                delta_query_with_policy(&part, &data, &order, &maxrho, &config, policy);
            assert_eq!(delta.delta, seq_delta.delta, "threads = {threads}");
            assert_eq!(delta.mu, seq_delta.mu, "threads = {threads}");
            // Distance pruning's "rest of the heap" counter depends on how
            // many nodes are still queued at the early exit, which is
            // per-point state — identical regardless of the partitioning.
            assert_eq!(delta_stats, seq_delta_stats, "threads = {threads}");
        }
    }

    #[test]
    fn disabling_pruning_gives_identical_results_but_more_work() {
        let data = query_dataset(13, 0.006).into_dataset(); // 300 points
        let part = FlatPartition::strips(&data, 0.07);
        let dc = 0.02;
        let rho = rho_query(&part, &data, dc);
        let order = DensityOrder::new(&rho);
        let maxrho = subtree_max_density(&part, &rho);

        let (with_pruning, stats_pruned) =
            delta_query_with_stats(&part, &data, &order, &maxrho, &DeltaQueryConfig::default());
        let (without_pruning, stats_full) = delta_query_with_stats(
            &part,
            &data,
            &order,
            &maxrho,
            &DeltaQueryConfig::no_pruning(),
        );

        assert_eq!(with_pruning.mu, without_pruning.mu);
        assert!(
            stats_pruned.points_scanned < stats_full.points_scanned,
            "pruning must reduce the number of points scanned ({} vs {})",
            stats_pruned.points_scanned,
            stats_full.points_scanned
        );
    }

    #[test]
    fn weighted_rho_query_matches_scan_and_is_thread_invariant() {
        let data = query_dataset(5, 0.004).into_dataset(); // 200 points
        let part = FlatPartition::strips(&data, 0.05);
        let dc = 0.02;
        for kernel in [Kernel::gaussian(0.01), Kernel::exponential(0.02)] {
            let expected =
                dpc_core::index::weighted_rho_scan(&data, dc, kernel, ExecPolicy::Sequential)
                    .unwrap();
            let (seq, stats) =
                weighted_rho_query_with_policy(&part, &data, dc, kernel, ExecPolicy::Sequential);
            assert_eq!(seq, expected, "{}", kernel.name());
            assert!(stats.nodes_discarded > 0, "traversal must prune");
            for threads in [2usize, 7] {
                let (par, _) = weighted_rho_query_with_policy(
                    &part,
                    &data,
                    dc,
                    kernel,
                    ExecPolicy::Threads(threads),
                );
                assert_eq!(par, seq, "{} threads = {threads}", kernel.name());
            }
        }
    }

    #[test]
    fn rho_query_prunes_disjoint_and_contained_nodes() {
        let data = s1(19, 0.04).into_dataset();
        let part = FlatPartition::strips(&data, 100_000.0);
        let (_, stats_small) = rho_query_with_stats(&part, &data, 5_000.0);
        assert!(stats_small.nodes_discarded > 0);
        let diameter = data.bbox_diameter() * 1.01;
        let (rho_l, stats_large) = rho_query_with_stats(&part, &data, diameter);
        assert!(stats_large.nodes_fully_contained > 0);
        assert!(rho_l.iter().all(|&r| r as usize == data.len() - 1));
    }

    #[test]
    fn subtree_max_density_is_max_over_members() {
        let data = s1(23, 0.02).into_dataset();
        let part = FlatPartition::strips(&data, 150_000.0);
        let rho = rho_query(&part, &data, 40_000.0);
        let maxrho = subtree_max_density(&part, &rho);
        let root = part.root().unwrap();
        assert_eq!(maxrho[root], rho.iter().copied().fold(0.0f64, f64::max));
        for (node, &got) in maxrho.iter().enumerate().skip(1) {
            let expected = part
                .points(node)
                .iter()
                .map(|&q| rho[q as usize])
                .fold(0.0f64, f64::max);
            assert_eq!(got, expected, "node {node}");
        }
    }

    #[test]
    fn eps_query_matches_linear_scan() {
        let data = s1(29, 0.05).into_dataset(); // 250 points
        let part = FlatPartition::strips(&data, 130_000.0);
        for (center, eps) in [
            (data.point(3), 40_000.0),
            (data.point(100), 250_000.0),
            (dpc_core::Point::new(0.0, 0.0), 90_000.0),
        ] {
            let got = eps_query(&part, &data, center, eps);
            let expected = dpc_core::index::eps_neighbors_scan(&data, center, eps).unwrap();
            assert_eq!(got, expected, "eps = {eps}");
        }
    }

    #[test]
    fn empty_tree_queries_are_empty() {
        let data = Dataset::new(vec![]);
        let part = FlatPartition::strips(&data, 1.0);
        assert!(rho_query(&part, &data, 1.0).is_empty());
        let rho: Vec<Rho> = vec![];
        let order = DensityOrder::new(&rho);
        let maxrho = subtree_max_density(&part, &rho);
        let deltas = delta_query(&part, &data, &order, &maxrho, &DeltaQueryConfig::default());
        assert!(deltas.is_empty());
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = QueryStats {
            nodes_visited: 1,
            points_scanned: 5,
            ..Default::default()
        };
        let b = QueryStats {
            nodes_visited: 2,
            nodes_discarded: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.nodes_visited, 3);
        assert_eq!(a.nodes_discarded, 3);
        assert_eq!(a.points_scanned, 5);
    }
}
