//! The R-tree index (§4.2 of the paper), bulk-loaded with the
//! Sort-Tile-Recursive (STR) packing algorithm.
//!
//! Unlike the quadtree, the R-tree is balanced: every leaf sits at the same
//! depth and the height is `O(log_M n)`. The STR packing of Leutenegger et
//! al. sorts the points by x, slices them into vertical strips of
//! `≈ M·√(n/M)` points, sorts each strip by y and cuts it into leaves of at
//! most `M` points; the upper levels are built by packing the child MBR
//! centres the same way until a single root remains. The DPC queries are the
//! generic pruned traversals of [`crate::query`].

use std::time::Duration;

use dpc_core::index::{validate_dc, validate_rho_len};
use dpc_core::{
    BoundingBox, Dataset, DeltaResult, DensityOrder, DpcIndex, ExecPolicy, IndexStats, Result, Rho,
    TieBreak, Timer,
};

use crate::common::{NodeId, SpatialPartition};
use crate::query::{
    delta_query_with_policy, rho_query_with_policy, subtree_max_density, DeltaQueryConfig,
    QueryStats,
};

/// Configuration of an [`RTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RTreeConfig {
    /// Maximum number of entries per node (`M`), for both leaves and internal
    /// nodes.
    pub node_capacity: usize,
    /// Tie-break rule of the density order.
    pub tie_break: TieBreak,
    /// Pruning configuration used by the δ-query of the [`DpcIndex`] impl.
    pub delta: DeltaQueryConfig,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig {
            node_capacity: 32,
            tie_break: TieBreak::default(),
            delta: DeltaQueryConfig::default(),
        }
    }
}

#[derive(Debug, Clone)]
enum NodeKind {
    Leaf { points: Vec<u32> },
    Internal { children: Vec<NodeId> },
}

#[derive(Debug, Clone)]
struct RNode {
    bbox: BoundingBox,
    count: usize,
    kind: NodeKind,
}

/// The STR-packed R-tree index.
#[derive(Debug, Clone)]
pub struct RTree {
    dataset: Dataset,
    nodes: Vec<RNode>,
    root: Option<NodeId>,
    config: RTreeConfig,
    construction_time: Duration,
}

impl RTree {
    /// Builds an R-tree with the default configuration.
    pub fn build(dataset: &Dataset) -> Self {
        Self::with_config(dataset, &RTreeConfig::default())
    }

    /// Builds an R-tree with an explicit configuration.
    ///
    /// # Panics
    /// Panics if `node_capacity < 2`.
    pub fn with_config(dataset: &Dataset, config: &RTreeConfig) -> Self {
        assert!(
            config.node_capacity >= 2,
            "RTree: node capacity must be at least 2"
        );
        let timer = Timer::start();
        let mut tree = RTree {
            dataset: dataset.clone(),
            nodes: Vec::new(),
            root: None,
            config: *config,
            construction_time: Duration::ZERO,
        };
        if !dataset.is_empty() {
            tree.bulk_load();
        }
        tree.construction_time = timer.elapsed();
        tree
    }

    /// The configuration used to build the tree.
    pub fn config(&self) -> &RTreeConfig {
        &self.config
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Leaf { .. }))
            .count()
    }

    /// ρ-query that also reports traversal statistics.
    pub fn rho_with_stats(&self, dc: f64) -> Result<(Vec<Rho>, QueryStats)> {
        self.rho_with_stats_policy(dc, ExecPolicy::Sequential)
    }

    /// [`rho_with_stats`](Self::rho_with_stats) under an explicit execution
    /// policy (bit-identical results at every thread count).
    pub fn rho_with_stats_policy(
        &self,
        dc: f64,
        policy: ExecPolicy,
    ) -> Result<(Vec<Rho>, QueryStats)> {
        validate_dc(dc)?;
        Ok(rho_query_with_policy(self, &self.dataset, dc, policy))
    }

    /// δ-query with an explicit pruning configuration, reporting traversal
    /// statistics.
    pub fn delta_with_config(
        &self,
        dc: f64,
        rho: &[Rho],
        config: &DeltaQueryConfig,
    ) -> Result<(DeltaResult, QueryStats)> {
        self.delta_with_config_policy(dc, rho, config, ExecPolicy::Sequential)
    }

    /// [`delta_with_config`](Self::delta_with_config) under an explicit
    /// execution policy.
    pub fn delta_with_config_policy(
        &self,
        dc: f64,
        rho: &[Rho],
        config: &DeltaQueryConfig,
        policy: ExecPolicy,
    ) -> Result<(DeltaResult, QueryStats)> {
        validate_dc(dc)?;
        validate_rho_len(rho, self.dataset.len())?;
        let order = DensityOrder::with_tie_break(rho, self.config.tie_break);
        let maxrho = subtree_max_density(self, rho);
        Ok(delta_query_with_policy(
            self,
            &self.dataset,
            &order,
            &maxrho,
            config,
            policy,
        ))
    }

    /// STR bulk loading: build the leaf level from the points, then pack each
    /// level into the one above until a single root remains.
    fn bulk_load(&mut self) {
        let m = self.config.node_capacity;
        // Leaf level.
        let coords: Vec<(f64, f64)> = self.dataset.points().iter().map(|p| (p.x, p.y)).collect();
        let groups = str_groups(&coords, m);
        let mut level: Vec<NodeId> = Vec::with_capacity(groups.len());
        for group in groups {
            let mut bbox = BoundingBox::EMPTY;
            let mut points = Vec::with_capacity(group.len());
            for idx in group {
                bbox = bbox.extended(self.dataset.point(idx));
                points.push(idx as u32);
            }
            let count = points.len();
            self.nodes.push(RNode {
                bbox,
                count,
                kind: NodeKind::Leaf { points },
            });
            level.push(self.nodes.len() - 1);
        }
        // Upper levels.
        while level.len() > 1 {
            let centers: Vec<(f64, f64)> = level
                .iter()
                .map(|&id| {
                    let c = self.nodes[id].bbox.center();
                    (c.x, c.y)
                })
                .collect();
            let groups = str_groups(&centers, m);
            let mut next_level = Vec::with_capacity(groups.len());
            for group in groups {
                let children: Vec<NodeId> = group.into_iter().map(|idx| level[idx]).collect();
                let mut bbox = BoundingBox::EMPTY;
                let mut count = 0;
                for &c in &children {
                    bbox = bbox.union(&self.nodes[c].bbox);
                    count += self.nodes[c].count;
                }
                self.nodes.push(RNode {
                    bbox,
                    count,
                    kind: NodeKind::Internal { children },
                });
                next_level.push(self.nodes.len() - 1);
            }
            level = next_level;
        }
        self.root = level.first().copied();
    }
}

/// Sort-Tile-Recursive grouping of `coords` into groups of at most
/// `capacity` items: sort by x, slice into `⌈√(⌈n/capacity⌉)⌉` vertical
/// strips, sort each strip by y and chunk it. Returns groups of indices into
/// `coords`.
fn str_groups(coords: &[(f64, f64)], capacity: usize) -> Vec<Vec<usize>> {
    let n = coords.len();
    if n == 0 {
        return vec![];
    }
    let leaves = n.div_ceil(capacity);
    let strips = (leaves as f64).sqrt().ceil() as usize;
    let strip_size = capacity * strips;

    let mut by_x: Vec<usize> = (0..n).collect();
    by_x.sort_by(|&a, &b| {
        coords[a]
            .0
            .total_cmp(&coords[b].0)
            .then(coords[a].1.total_cmp(&coords[b].1))
            .then(a.cmp(&b))
    });

    let mut groups = Vec::with_capacity(leaves);
    for strip in by_x.chunks(strip_size.max(1)) {
        let mut strip: Vec<usize> = strip.to_vec();
        strip.sort_by(|&a, &b| {
            coords[a]
                .1
                .total_cmp(&coords[b].1)
                .then(coords[a].0.total_cmp(&coords[b].0))
                .then(a.cmp(&b))
        });
        for chunk in strip.chunks(capacity) {
            groups.push(chunk.to_vec());
        }
    }
    groups
}

impl SpatialPartition for RTree {
    fn root(&self) -> Option<NodeId> {
        self.root
    }

    fn bbox(&self, node: NodeId) -> BoundingBox {
        self.nodes[node].bbox
    }

    fn point_count(&self, node: NodeId) -> usize {
        self.nodes[node].count
    }

    fn children(&self, node: NodeId) -> &[NodeId] {
        match &self.nodes[node].kind {
            NodeKind::Internal { children } => children,
            NodeKind::Leaf { .. } => &[],
        }
    }

    fn points(&self, node: NodeId) -> &[u32] {
        match &self.nodes[node].kind {
            NodeKind::Leaf { points } => points,
            NodeKind::Internal { .. } => &[],
        }
    }

    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

impl DpcIndex for RTree {
    fn name(&self) -> &'static str {
        "rtree"
    }

    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn rho(&self, dc: f64) -> Result<Vec<Rho>> {
        self.rho_with_stats(dc).map(|(rho, _)| rho)
    }

    fn delta(&self, dc: f64, rho: &[Rho]) -> Result<DeltaResult> {
        self.delta_with_config(dc, rho, &self.config.delta)
            .map(|(result, _)| result)
    }

    fn rho_with_policy(&self, dc: f64, policy: ExecPolicy) -> Result<Vec<Rho>> {
        self.rho_with_stats_policy(dc, policy).map(|(rho, _)| rho)
    }

    fn delta_with_policy(&self, dc: f64, rho: &[Rho], policy: ExecPolicy) -> Result<DeltaResult> {
        self.delta_with_config_policy(dc, rho, &self.config.delta, policy)
            .map(|(result, _)| result)
    }

    fn memory_bytes(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<RNode>()
                    + match &n.kind {
                        NodeKind::Leaf { points } => points.capacity() * std::mem::size_of::<u32>(),
                        NodeKind::Internal { children } => {
                            children.capacity() * std::mem::size_of::<NodeId>()
                        }
                    }
            })
            .sum();
        node_bytes + self.dataset.memory_bytes()
    }

    fn stats(&self) -> IndexStats {
        IndexStats::new(self.construction_time, self.memory_bytes())
            .with_counter("nodes", self.num_nodes() as u64)
            .with_counter("leaves", self.leaf_count() as u64)
            .with_counter("height", self.height() as u64)
            .with_counter("fanout", self.config.node_capacity as u64)
    }

    fn tie_break(&self) -> TieBreak {
        self.config.tie_break
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::check_partition_invariants;
    use crate::quadtree::Quadtree;
    use dpc_baseline::LeanDpc;
    use dpc_datasets::generators::{checkins, range, s1, CheckinConfig};

    fn assert_matches_baseline(data: &Dataset, tree: &RTree, dc: f64) {
        let baseline = LeanDpc::build(data);
        let (r1, d1) = tree.rho_delta(dc).unwrap();
        let (r2, d2) = baseline.rho_delta(dc).unwrap();
        assert_eq!(r1, r2, "rho mismatch at dc = {dc}");
        assert_eq!(d1.mu, d2.mu, "mu mismatch at dc = {dc}");
        for p in 0..data.len() {
            assert!(
                (d1.delta(p) - d2.delta(p)).abs() < 1e-9,
                "dc = {dc}, p = {p}"
            );
        }
    }

    #[test]
    fn str_groups_respect_capacity_and_cover_all_items() {
        let coords: Vec<(f64, f64)> = (0..137)
            .map(|i| (i as f64 * 0.7, (i % 13) as f64))
            .collect();
        let groups = str_groups(&coords, 10);
        let mut seen = vec![false; coords.len()];
        for g in &groups {
            assert!(!g.is_empty() && g.len() <= 10);
            for &i in g {
                assert!(!seen[i], "item {i} grouped twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn structure_invariants_hold_and_tree_is_balanced() {
        let data = range(137, 0.004).into_dataset(); // 800 points
        let tree = RTree::build(&data);
        check_partition_invariants(&tree, &data);
        // Height must be logarithmic in n with fanout 32: 800 points -> 3 levels.
        assert!(tree.height() <= 3, "height = {}", tree.height());
        // All leaves at the same depth (balance): walk and check.
        fn leaf_depths(tree: &RTree, node: NodeId, depth: usize, out: &mut Vec<usize>) {
            if tree.is_leaf(node) {
                out.push(depth);
            } else {
                for &c in tree.children(node) {
                    leaf_depths(tree, c, depth + 1, out);
                }
            }
        }
        let mut depths = Vec::new();
        leaf_depths(&tree, tree.root().unwrap(), 0, &mut depths);
        let first = depths[0];
        assert!(
            depths.iter().all(|&d| d == first),
            "leaves at different depths"
        );
    }

    #[test]
    fn matches_baseline_on_s1() {
        let data = s1(139, 0.06).into_dataset(); // 300 points
        let tree = RTree::build(&data);
        for dc in [5_000.0, 30_000.0, 200_000.0, 1_500_000.0] {
            assert_matches_baseline(&data, &tree, dc);
        }
    }

    #[test]
    fn matches_baseline_on_skewed_checkins() {
        let data = checkins(400, &CheckinConfig::brightkite(), 11).into_dataset();
        let tree = RTree::build(&data);
        for dc in [0.005, 0.05, 1.0] {
            assert_matches_baseline(&data, &tree, dc);
        }
    }

    #[test]
    fn matches_quadtree_results_exactly() {
        let data = range(149, 0.002).into_dataset(); // 400 points
        let rtree = RTree::build(&data);
        let quadtree = Quadtree::build(&data);
        for dc in [500.0, 2_200.0, 10_000.0] {
            let (r1, d1) = rtree.rho_delta(dc).unwrap();
            let (r2, d2) = quadtree.rho_delta(dc).unwrap();
            assert_eq!(r1, r2);
            assert_eq!(d1.mu, d2.mu);
        }
    }

    #[test]
    fn small_fanout_still_correct() {
        let data = s1(151, 0.03).into_dataset(); // 150 points
        let config = RTreeConfig {
            node_capacity: 3,
            ..Default::default()
        };
        let tree = RTree::with_config(&data, &config);
        check_partition_invariants(&tree, &data);
        assert_matches_baseline(&data, &tree, 40_000.0);
    }

    #[test]
    fn pruning_reduces_work_but_not_results() {
        let data = s1(157, 0.1).into_dataset(); // 500 points
        let tree = RTree::build(&data);
        let dc = 30_000.0;
        let rho = tree.rho(dc).unwrap();
        let (d_pruned, s_pruned) = tree
            .delta_with_config(dc, &rho, &DeltaQueryConfig::default())
            .unwrap();
        let (d_full, s_full) = tree
            .delta_with_config(dc, &rho, &DeltaQueryConfig::no_pruning())
            .unwrap();
        assert_eq!(d_pruned.mu, d_full.mu);
        assert!(s_pruned.points_scanned < s_full.points_scanned);
    }

    #[test]
    fn memory_is_near_linear() {
        let small = RTree::build(&s1(163, 0.04).into_dataset()); // 200
        let large = RTree::build(&s1(163, 0.4).into_dataset()); // 2000
        let ratio = large.memory_bytes() as f64 / small.memory_bytes() as f64;
        assert!(ratio < 20.0, "memory grew superlinearly: ratio = {ratio}");
    }

    #[test]
    fn empty_and_single_point_trees() {
        let empty = RTree::build(&Dataset::new(vec![]));
        assert_eq!(empty.num_nodes(), 0);
        assert!(empty.rho(1.0).unwrap().is_empty());

        let single = RTree::build(&Dataset::new(vec![dpc_core::Point::new(3.0, 4.0)]));
        check_partition_invariants(&single, &Dataset::new(vec![dpc_core::Point::new(3.0, 4.0)]));
        let (rho, deltas) = single.rho_delta(1.0).unwrap();
        assert_eq!(rho, vec![0]);
        assert_eq!(deltas.mu(0), None);
    }

    #[test]
    fn stats_expose_structure() {
        let data = s1(167, 0.1).into_dataset();
        let tree = RTree::build(&data);
        let stats = tree.stats();
        assert!(stats.counter("nodes").unwrap() >= stats.counter("leaves").unwrap());
        assert_eq!(stats.counter("fanout"), Some(32));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn capacity_below_two_panics() {
        RTree::with_config(
            &Dataset::new(vec![]),
            &RTreeConfig {
                node_capacity: 1,
                ..Default::default()
            },
        );
    }
}
