//! The R-tree index (§4.2 of the paper), bulk-loaded with the
//! Sort-Tile-Recursive (STR) packing algorithm.
//!
//! Unlike the quadtree, the R-tree is balanced: every leaf sits at the same
//! depth and the height is `O(log_M n)`. The STR packing of Leutenegger et
//! al. sorts the points by x, slices them into vertical strips of
//! `≈ M·√(n/M)` points, sorts each strip by y and cuts it into leaves of at
//! most `M` points; the upper levels are built by packing the child MBR
//! centres the same way until a single root remains. The DPC queries are the
//! generic pruned traversals of [`crate::query`].
//!
//! ## Online updates
//!
//! The tree is [`UpdatableIndex`], maintained in the style of the R*-tree
//! (Beckmann et al.):
//!
//! * **insert** descends by least-area-enlargement (ChooseLeaf). The first
//!   time a leaf overflows during an update, a
//!   [`RTreeConfig::reinsert_fraction`] of its entries — those farthest from
//!   the node centre — are *force-reinserted* from the top, which shrinks
//!   the node and migrates strays to better-fitting neighbours; a second
//!   overflow splits the node (Guttman's quadratic split), propagating
//!   upward and growing a new root when the old one splits.
//! * **remove** clears the entry and *shrinks* every bounding box on the
//!   path back to the root (recomputed tight, not just left conservative).
//!   A leaf that falls below [`RTreeConfig::min_fill`] is dissolved and its
//!   survivors reinserted; emptied ancestors are pruned and a root left
//!   with a single child is collapsed, so the height shrinks again as the
//!   window drains.
//!
//! All leaves stay at the same depth through every update, and the
//! reinsert/split/dissolve triggers are observable through
//! [`UpdatableIndex::maintenance_counters`].

use std::time::Duration;

use dpc_core::index::{validate_dc, validate_rho_len};
use dpc_core::{
    BoundingBox, Dataset, DeltaResult, DensityOrder, DpcError, DpcIndex, ExecPolicy, IndexStats,
    Kernel, Point, PointId, Result, Rho, TieBreak, Timer, UpdatableIndex,
};

use crate::common::{check_partition_invariants, NodeId, SpatialPartition};
use crate::query::{
    delta_query_with_policy, eps_query, rho_delta_query_recorded, rho_query_with_policy,
    subtree_max_density, weighted_rho_query_with_policy, DeltaQueryConfig, QueryStats,
};

/// Configuration of an [`RTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RTreeConfig {
    /// Maximum number of entries per node (`M`), for both leaves and internal
    /// nodes.
    pub node_capacity: usize,
    /// Tie-break rule of the density order.
    pub tie_break: TieBreak,
    /// Pruning configuration used by the δ-query of the [`DpcIndex`] impl.
    pub delta: DeltaQueryConfig,
    /// Minimum fill fraction `m/M ∈ (0, 0.5]`: a leaf that drops below
    /// `⌈min_fill·M⌉` entries after a deletion is dissolved and its
    /// survivors reinserted.
    pub min_fill: f64,
    /// Fraction of a node's entries force-reinserted on its first overflow
    /// during an update (`p` in the R*-tree paper, there 30%). 0 disables
    /// forced reinsertion (overflow always splits).
    pub reinsert_fraction: f64,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig {
            node_capacity: 32,
            tie_break: TieBreak::default(),
            delta: DeltaQueryConfig::default(),
            min_fill: 0.3,
            reinsert_fraction: 0.3,
        }
    }
}

#[derive(Debug, Clone)]
enum NodeKind {
    Leaf { points: Vec<u32> },
    Internal { children: Vec<NodeId> },
}

#[derive(Debug, Clone)]
struct RNode {
    bbox: BoundingBox,
    count: usize,
    /// Parent node; the root stores itself.
    parent: NodeId,
    kind: NodeKind,
}

/// The STR-packed R-tree index.
#[derive(Debug, Clone)]
pub struct RTree {
    dataset: Dataset,
    nodes: Vec<RNode>,
    root: Option<NodeId>,
    /// Leaf currently holding each dense point id.
    leaf_of: Vec<NodeId>,
    /// Arena slots freed by dissolved nodes, recycled by [`Self::alloc`].
    free: Vec<NodeId>,
    /// Forced-reinsertion rounds performed (first overflow of a node).
    forced_reinserts: u64,
    /// Node splits performed (second overflow; includes root splits).
    node_splits: u64,
    /// Nodes dissolved by underflow handling (leaves below the minimum
    /// fill, emptied ancestors, collapsed roots).
    nodes_dissolved: u64,
    /// `None` outside an `apply_batch` epoch (every insert gets its own
    /// forced-reinsertion round); `Some(available)` while one is in flight —
    /// the whole batch shares a single round, so reinsertion fires at most
    /// once per epoch and later overflows split directly.
    batch_reinsert: Option<bool>,
    config: RTreeConfig,
    construction_time: Duration,
}

impl RTree {
    /// Builds an R-tree with the default configuration.
    pub fn build(dataset: &Dataset) -> Self {
        Self::with_config(dataset, &RTreeConfig::default())
    }

    /// Builds an R-tree with an explicit configuration.
    ///
    /// # Panics
    /// Panics if `node_capacity < 2`, `min_fill` is outside `(0, 0.5]`, or
    /// `reinsert_fraction` is outside `[0, 1)`.
    pub fn with_config(dataset: &Dataset, config: &RTreeConfig) -> Self {
        assert!(
            config.node_capacity >= 2,
            "RTree: node capacity must be at least 2"
        );
        assert!(
            config.min_fill > 0.0 && config.min_fill <= 0.5,
            "RTree: min_fill must be in (0, 0.5], got {}",
            config.min_fill
        );
        assert!(
            (0.0..1.0).contains(&config.reinsert_fraction),
            "RTree: reinsert_fraction must be in [0, 1), got {}",
            config.reinsert_fraction
        );
        let timer = Timer::start();
        let mut tree = RTree {
            dataset: dataset.clone(),
            nodes: Vec::new(),
            root: None,
            leaf_of: vec![0; dataset.len()],
            free: Vec::new(),
            forced_reinserts: 0,
            node_splits: 0,
            nodes_dissolved: 0,
            batch_reinsert: None,
            config: *config,
            construction_time: Duration::ZERO,
        };
        if !dataset.is_empty() {
            tree.bulk_load();
        }
        tree.construction_time = timer.elapsed();
        tree
    }

    /// The configuration used to build the tree.
    pub fn config(&self) -> &RTreeConfig {
        &self.config
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        let Some(root) = self.root else { return 0 };
        let mut leaves = 0;
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            match &self.nodes[node].kind {
                NodeKind::Leaf { .. } => leaves += 1,
                NodeKind::Internal { children } => stack.extend_from_slice(children),
            }
        }
        leaves
    }

    /// Forced-reinsertion rounds performed so far.
    pub fn forced_reinserts(&self) -> u64 {
        self.forced_reinserts
    }

    /// Node splits performed so far.
    pub fn node_splits(&self) -> u64 {
        self.node_splits
    }

    /// Nodes dissolved by underflow handling so far.
    pub fn nodes_dissolved(&self) -> u64 {
        self.nodes_dissolved
    }

    /// ρ-query that also reports traversal statistics.
    pub fn rho_with_stats(&self, dc: f64) -> Result<(Vec<Rho>, QueryStats)> {
        self.rho_with_stats_policy(dc, ExecPolicy::Sequential)
    }

    /// [`rho_with_stats`](Self::rho_with_stats) under an explicit execution
    /// policy (bit-identical results at every thread count).
    pub fn rho_with_stats_policy(
        &self,
        dc: f64,
        policy: ExecPolicy,
    ) -> Result<(Vec<Rho>, QueryStats)> {
        validate_dc(dc)?;
        Ok(rho_query_with_policy(self, &self.dataset, dc, policy))
    }

    /// δ-query with an explicit pruning configuration, reporting traversal
    /// statistics.
    pub fn delta_with_config(
        &self,
        dc: f64,
        rho: &[Rho],
        config: &DeltaQueryConfig,
    ) -> Result<(DeltaResult, QueryStats)> {
        self.delta_with_config_policy(dc, rho, config, ExecPolicy::Sequential)
    }

    /// [`delta_with_config`](Self::delta_with_config) under an explicit
    /// execution policy.
    pub fn delta_with_config_policy(
        &self,
        dc: f64,
        rho: &[Rho],
        config: &DeltaQueryConfig,
        policy: ExecPolicy,
    ) -> Result<(DeltaResult, QueryStats)> {
        validate_dc(dc)?;
        validate_rho_len(rho, self.dataset.len())?;
        let order = DensityOrder::with_tie_break(rho, self.config.tie_break);
        let maxrho = subtree_max_density(self, rho);
        Ok(delta_query_with_policy(
            self,
            &self.dataset,
            &order,
            &maxrho,
            config,
            policy,
        ))
    }

    /// Removes `child` from `parent`'s child list and frees its arena slot.
    fn detach_child(&mut self, parent: NodeId, child: NodeId) {
        if let NodeKind::Internal { children } = &mut self.nodes[parent].kind {
            children.retain(|&c| c != child);
        }
        self.free.push(child);
    }

    /// Allocates an arena slot, recycling one freed by an earlier dissolve.
    fn alloc(&mut self, node: RNode) -> NodeId {
        match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    /// Minimum number of entries a non-root leaf keeps before it is
    /// dissolved.
    fn min_fill_count(&self) -> usize {
        ((self.config.node_capacity as f64 * self.config.min_fill).ceil() as usize).max(1)
    }

    /// STR bulk loading: build the leaf level from the points, then pack each
    /// level into the one above until a single root remains.
    fn bulk_load(&mut self) {
        let m = self.config.node_capacity;
        // Leaf level.
        let coords: Vec<(f64, f64)> = self.dataset.points().iter().map(|p| (p.x, p.y)).collect();
        let groups = str_groups(&coords, m);
        let mut level: Vec<NodeId> = Vec::with_capacity(groups.len());
        for group in groups {
            let mut bbox = BoundingBox::EMPTY;
            let mut points = Vec::with_capacity(group.len());
            for idx in group {
                bbox = bbox.extended(self.dataset.point(idx));
                points.push(idx as u32);
            }
            let count = points.len();
            let ids = points.clone();
            let node = self.alloc(RNode {
                bbox,
                count,
                parent: 0,
                kind: NodeKind::Leaf { points },
            });
            for id in ids {
                self.leaf_of[id as usize] = node;
            }
            level.push(node);
        }
        // Upper levels.
        while level.len() > 1 {
            let centers: Vec<(f64, f64)> = level
                .iter()
                .map(|&id| {
                    let c = self.nodes[id].bbox.center();
                    (c.x, c.y)
                })
                .collect();
            let groups = str_groups(&centers, m);
            let mut next_level = Vec::with_capacity(groups.len());
            for group in groups {
                let children: Vec<NodeId> = group.into_iter().map(|idx| level[idx]).collect();
                let mut bbox = BoundingBox::EMPTY;
                let mut count = 0;
                for &c in &children {
                    bbox = bbox.union(&self.nodes[c].bbox);
                    count += self.nodes[c].count;
                }
                let node = self.alloc(RNode {
                    bbox,
                    count,
                    parent: 0,
                    kind: NodeKind::Internal {
                        children: children.clone(),
                    },
                });
                for c in children {
                    self.nodes[c].parent = node;
                }
                next_level.push(node);
            }
            level = next_level;
        }
        if let Some(&root) = level.first() {
            self.nodes[root].parent = root;
            self.root = Some(root);
        }
    }

    /// Recomputes bounding box and count of `node` from its members and
    /// propagates the (possibly shrunk) values to the root. This is the
    /// "bbox shrinking" pass of the delete path: boxes are re-tightened, not
    /// left conservative.
    fn refresh_upward(&mut self, mut node: NodeId) {
        loop {
            let (bbox, count) = match &self.nodes[node].kind {
                NodeKind::Leaf { points } => {
                    let bb = points.iter().fold(BoundingBox::EMPTY, |b, &q| {
                        b.extended(self.dataset.point(q as PointId))
                    });
                    (bb, points.len())
                }
                NodeKind::Internal { children } => {
                    let mut bb = BoundingBox::EMPTY;
                    let mut count = 0;
                    for &c in children {
                        bb = bb.union(&self.nodes[c].bbox);
                        count += self.nodes[c].count;
                    }
                    (bb, count)
                }
            };
            self.nodes[node].bbox = bbox;
            self.nodes[node].count = count;
            let parent = self.nodes[node].parent;
            if parent == node {
                break;
            }
            node = parent;
        }
    }

    /// ChooseLeaf of Guttman: descend picking the child whose box needs the
    /// least area enlargement (ties: smaller area, then first in child
    /// order).
    fn choose_leaf(&self, p: Point) -> NodeId {
        let mut node = self.root.expect("choose_leaf on an empty tree");
        loop {
            match &self.nodes[node].kind {
                NodeKind::Leaf { .. } => return node,
                NodeKind::Internal { children } => {
                    debug_assert!(!children.is_empty(), "internal node without children");
                    let mut best = children[0];
                    let mut best_enlargement = f64::INFINITY;
                    let mut best_area = f64::INFINITY;
                    for &c in children {
                        let bb = self.nodes[c].bbox;
                        let area = bb.area();
                        let enlargement = bb.extended(p).area() - area;
                        if enlargement < best_enlargement
                            || (enlargement == best_enlargement && area < best_area)
                        {
                            best = c;
                            best_enlargement = enlargement;
                            best_area = area;
                        }
                    }
                    node = best;
                }
            }
        }
    }

    /// Inserts an already-pushed dataset point into the tree structure.
    /// `may_reinsert` gates the R*-style forced-reinsertion round: the
    /// triggering update gets one round; re-entrant inserts split instead.
    fn insert_entry(&mut self, id: u32, may_reinsert: bool) {
        let p = self.dataset.point(id as PointId);
        let Some(_) = self.root else {
            let node = self.alloc(RNode {
                bbox: BoundingBox::from_point(p),
                count: 1,
                parent: 0,
                kind: NodeKind::Leaf { points: vec![id] },
            });
            self.nodes[node].parent = node;
            self.root = Some(node);
            self.leaf_of[id as usize] = node;
            return;
        };
        let leaf = self.choose_leaf(p);
        if let NodeKind::Leaf { points } = &mut self.nodes[leaf].kind {
            points.push(id);
        }
        self.leaf_of[id as usize] = leaf;
        // Grow boxes and counts along the path.
        let mut cur = leaf;
        loop {
            self.nodes[cur].bbox = self.nodes[cur].bbox.extended(p);
            self.nodes[cur].count += 1;
            let parent = self.nodes[cur].parent;
            if parent == cur {
                break;
            }
            cur = parent;
        }
        let overflowed = match &self.nodes[leaf].kind {
            NodeKind::Leaf { points } => points.len() > self.config.node_capacity,
            NodeKind::Internal { .. } => unreachable!("choose_leaf returned an internal node"),
        };
        if overflowed {
            self.handle_leaf_overflow(leaf, may_reinsert);
        }
    }

    /// First overflow → forced reinsertion; overflow with the round already
    /// spent (or a root leaf, where migration is meaningless) → split.
    fn handle_leaf_overflow(&mut self, leaf: NodeId, may_reinsert: bool) {
        let k = (self.config.node_capacity as f64 * self.config.reinsert_fraction).ceil() as usize;
        if may_reinsert && self.root != Some(leaf) && k > 0 {
            self.forced_reinserts += 1;
            // Inside an apply_batch epoch the round is shared by the whole
            // batch: spend it.
            if let Some(available) = self.batch_reinsert.as_mut() {
                *available = false;
            }
            // Evict the k entries farthest from the node centre — exactly
            // the strays that inflate the box.
            let center = self.nodes[leaf].bbox.center();
            let evicted: Vec<u32> = {
                let NodeKind::Leaf { points } = &mut self.nodes[leaf].kind else {
                    unreachable!("overflow handling on an internal node");
                };
                let mut by_dist: Vec<u32> = points.clone();
                by_dist.sort_by(|&a, &b| {
                    let da = center.distance_squared(&self_point(&self.dataset, a));
                    let db = center.distance_squared(&self_point(&self.dataset, b));
                    db.total_cmp(&da).then(a.cmp(&b))
                });
                let evicted: Vec<u32> = by_dist[..k.min(points.len() - 1)].to_vec();
                points.retain(|q| !evicted.contains(q));
                evicted
            };
            // Shrink the donor path, then route every evictee from the top.
            self.refresh_upward(leaf);
            for id in evicted {
                self.insert_entry(id, false);
            }
        } else {
            self.split(leaf);
        }
    }

    /// Guttman's quadratic split of an overflowing node, propagating upward
    /// when the parent overflows in turn; a splitting root grows a new root
    /// above itself (the only way the tree gains height).
    fn split(&mut self, node: NodeId) {
        self.node_splits += 1;
        let min_fill = self.min_fill_count();
        let sibling = match &self.nodes[node].kind {
            NodeKind::Leaf { points } => {
                let boxes: Vec<BoundingBox> = points
                    .iter()
                    .map(|&q| BoundingBox::from_point(self.dataset.point(q as PointId)))
                    .collect();
                let (keep, give) = quadratic_partition(&boxes, min_fill);
                let points_snapshot = points.clone();
                let keep_points: Vec<u32> = keep.iter().map(|&i| points_snapshot[i]).collect();
                let give_points: Vec<u32> = give.iter().map(|&i| points_snapshot[i]).collect();
                if let NodeKind::Leaf { points } = &mut self.nodes[node].kind {
                    *points = keep_points;
                }
                let bbox = give_points.iter().fold(BoundingBox::EMPTY, |b, &q| {
                    b.extended(self.dataset.point(q as PointId))
                });
                let count = give_points.len();
                let sibling = self.alloc(RNode {
                    bbox,
                    count,
                    parent: 0,
                    kind: NodeKind::Leaf {
                        points: give_points.clone(),
                    },
                });
                for id in give_points {
                    self.leaf_of[id as usize] = sibling;
                }
                sibling
            }
            NodeKind::Internal { children } => {
                let boxes: Vec<BoundingBox> =
                    children.iter().map(|&c| self.nodes[c].bbox).collect();
                let (keep, give) = quadratic_partition(&boxes, min_fill);
                let children_snapshot = children.clone();
                let keep_children: Vec<NodeId> =
                    keep.iter().map(|&i| children_snapshot[i]).collect();
                let give_children: Vec<NodeId> =
                    give.iter().map(|&i| children_snapshot[i]).collect();
                if let NodeKind::Internal { children } = &mut self.nodes[node].kind {
                    *children = keep_children;
                }
                let mut bbox = BoundingBox::EMPTY;
                let mut count = 0;
                for &c in &give_children {
                    bbox = bbox.union(&self.nodes[c].bbox);
                    count += self.nodes[c].count;
                }
                let sibling = self.alloc(RNode {
                    bbox,
                    count,
                    parent: 0,
                    kind: NodeKind::Internal {
                        children: give_children.clone(),
                    },
                });
                for c in give_children {
                    self.nodes[c].parent = sibling;
                }
                sibling
            }
        };
        // Re-tighten the kept half locally (the given-away entries may have
        // carried the extreme coordinates).
        let (kept_bbox, kept_count) = match &self.nodes[node].kind {
            NodeKind::Leaf { points } => (
                points.iter().fold(BoundingBox::EMPTY, |b, &q| {
                    b.extended(self.dataset.point(q as PointId))
                }),
                points.len(),
            ),
            NodeKind::Internal { children } => {
                let mut bb = BoundingBox::EMPTY;
                let mut count = 0;
                for &c in children {
                    bb = bb.union(&self.nodes[c].bbox);
                    count += self.nodes[c].count;
                }
                (bb, count)
            }
        };
        self.nodes[node].bbox = kept_bbox;
        self.nodes[node].count = kept_count;

        if self.root == Some(node) {
            let bbox = self.nodes[node].bbox.union(&self.nodes[sibling].bbox);
            let count = self.nodes[node].count + self.nodes[sibling].count;
            let new_root = self.alloc(RNode {
                bbox,
                count,
                parent: 0,
                kind: NodeKind::Internal {
                    children: vec![node, sibling],
                },
            });
            self.nodes[new_root].parent = new_root;
            self.nodes[node].parent = new_root;
            self.nodes[sibling].parent = new_root;
            self.root = Some(new_root);
        } else {
            let parent = self.nodes[node].parent;
            self.nodes[sibling].parent = parent;
            let parent_overflowed = {
                let NodeKind::Internal { children } = &mut self.nodes[parent].kind else {
                    unreachable!("parent of a split node must be internal");
                };
                children.push(sibling);
                children.len() > self.config.node_capacity
            };
            // The parent's box and count cover the same entries as before
            // the split, so nothing upward needs refreshing here.
            if parent_overflowed {
                self.split(parent);
            }
        }
    }

    /// Checks the tree's structural bookkeeping: the generic partition
    /// invariants plus the update-path state (`leaf_of` agreement, parent
    /// links, uniform leaf depth, fanout bounds).
    ///
    /// # Panics
    /// Panics with a descriptive message on the first violation.
    pub fn check_structure(&self) {
        check_partition_invariants(self, &self.dataset);
        assert_eq!(
            self.leaf_of.len(),
            self.dataset.len(),
            "leaf_of length diverged from the dataset"
        );
        for (id, &leaf) in self.leaf_of.iter().enumerate() {
            match &self.nodes[leaf].kind {
                NodeKind::Leaf { points } => assert!(
                    points.contains(&(id as u32)),
                    "leaf_of[{id}] = {leaf} but that leaf does not hold the point"
                ),
                NodeKind::Internal { .. } => {
                    panic!("leaf_of[{id}] = {leaf} points at an internal node")
                }
            }
        }
        let Some(root) = self.root else { return };
        assert_eq!(self.nodes[root].parent, root, "root must be its own parent");
        let mut leaf_depths = Vec::new();
        let mut stack = vec![(root, 0usize)];
        while let Some((node, depth)) = stack.pop() {
            match &self.nodes[node].kind {
                NodeKind::Leaf { points } => {
                    assert!(
                        points.len() <= self.config.node_capacity,
                        "leaf {node} exceeds the node capacity"
                    );
                    leaf_depths.push(depth);
                }
                NodeKind::Internal { children } => {
                    assert!(!children.is_empty(), "internal node {node} has no children");
                    assert!(
                        children.len() <= self.config.node_capacity,
                        "internal node {node} exceeds the node capacity"
                    );
                    for &c in children {
                        assert_eq!(
                            self.nodes[c].parent, node,
                            "child {c} has a stale parent link"
                        );
                        stack.push((c, depth + 1));
                    }
                }
            }
        }
        let first = leaf_depths[0];
        assert!(
            leaf_depths.iter().all(|&d| d == first),
            "leaves at different depths: {leaf_depths:?}"
        );
    }
}

/// `dataset.point` by `u32` id (helper for the sort closures, which cannot
/// borrow `self` while the node arena is mutably borrowed).
fn self_point(dataset: &Dataset, id: u32) -> Point {
    dataset.point(id as PointId)
}

/// Sort-Tile-Recursive grouping of `coords` into groups of at most
/// `capacity` items: sort by x, slice into `⌈√(⌈n/capacity⌉)⌉` vertical
/// strips, sort each strip by y and chunk it. Returns groups of indices into
/// `coords`.
fn str_groups(coords: &[(f64, f64)], capacity: usize) -> Vec<Vec<usize>> {
    let n = coords.len();
    if n == 0 {
        return vec![];
    }
    let leaves = n.div_ceil(capacity);
    let strips = (leaves as f64).sqrt().ceil() as usize;
    let strip_size = capacity * strips;

    let mut by_x: Vec<usize> = (0..n).collect();
    by_x.sort_by(|&a, &b| {
        coords[a]
            .0
            .total_cmp(&coords[b].0)
            .then(coords[a].1.total_cmp(&coords[b].1))
            .then(a.cmp(&b))
    });

    let mut groups = Vec::with_capacity(leaves);
    for strip in by_x.chunks(strip_size.max(1)) {
        let mut strip: Vec<usize> = strip.to_vec();
        strip.sort_by(|&a, &b| {
            coords[a]
                .1
                .total_cmp(&coords[b].1)
                .then(coords[a].0.total_cmp(&coords[b].0))
                .then(a.cmp(&b))
        });
        for chunk in strip.chunks(capacity) {
            groups.push(chunk.to_vec());
        }
    }
    groups
}

/// Guttman's quadratic split: picks the two seed entries wasting the most
/// area together, then assigns every remaining entry to the group whose box
/// it enlarges least (ties: smaller area, then the first group), while
/// guaranteeing both groups at least `min_fill` entries. Returns the two
/// index groups (first keeps the original node's slot).
fn quadratic_partition(boxes: &[BoundingBox], min_fill: usize) -> (Vec<usize>, Vec<usize>) {
    let n = boxes.len();
    debug_assert!(n >= 2, "cannot split fewer than two entries");
    let min_fill = min_fill.min(n / 2).max(1);
    // Seed pair with maximal dead area.
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let waste = boxes[i].union(&boxes[j]).area() - boxes[i].area() - boxes[j].area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    let mut group_a = vec![seed_a];
    let mut group_b = vec![seed_b];
    let mut bbox_a = boxes[seed_a];
    let mut bbox_b = boxes[seed_b];
    for (i, bbox) in boxes.iter().enumerate() {
        if i == seed_a || i == seed_b {
            continue;
        }
        let remaining = n - 1 - group_a.len() - group_b.len();
        // Force-assign when one group needs every remaining entry to reach
        // the minimum fill.
        if group_a.len() + remaining < min_fill {
            group_a.push(i);
            bbox_a = bbox_a.union(bbox);
            continue;
        }
        if group_b.len() + remaining < min_fill {
            group_b.push(i);
            bbox_b = bbox_b.union(bbox);
            continue;
        }
        let enlarge_a = bbox_a.union(bbox).area() - bbox_a.area();
        let enlarge_b = bbox_b.union(bbox).area() - bbox_b.area();
        let to_a =
            enlarge_a < enlarge_b || (enlarge_a == enlarge_b && bbox_a.area() <= bbox_b.area());
        if to_a {
            group_a.push(i);
            bbox_a = bbox_a.union(bbox);
        } else {
            group_b.push(i);
            bbox_b = bbox_b.union(bbox);
        }
    }
    (group_a, group_b)
}

impl SpatialPartition for RTree {
    fn root(&self) -> Option<NodeId> {
        self.root
    }

    fn bbox(&self, node: NodeId) -> BoundingBox {
        self.nodes[node].bbox
    }

    fn point_count(&self, node: NodeId) -> usize {
        self.nodes[node].count
    }

    fn children(&self, node: NodeId) -> &[NodeId] {
        match &self.nodes[node].kind {
            NodeKind::Internal { children } => children,
            NodeKind::Leaf { .. } => &[],
        }
    }

    fn points(&self, node: NodeId) -> &[u32] {
        match &self.nodes[node].kind {
            NodeKind::Leaf { points } => points,
            NodeKind::Internal { .. } => &[],
        }
    }

    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

impl DpcIndex for RTree {
    fn name(&self) -> &'static str {
        "rtree"
    }

    fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    fn rho(&self, dc: f64) -> Result<Vec<Rho>> {
        self.rho_with_stats(dc).map(|(rho, _)| rho)
    }

    fn delta(&self, dc: f64, rho: &[Rho]) -> Result<DeltaResult> {
        self.delta_with_config(dc, rho, &self.config.delta)
            .map(|(result, _)| result)
    }

    fn rho_with_policy(&self, dc: f64, policy: ExecPolicy) -> Result<Vec<Rho>> {
        self.rho_with_stats_policy(dc, policy).map(|(rho, _)| rho)
    }

    fn rho_kernel_with_policy(
        &self,
        dc: f64,
        kernel: Kernel,
        policy: ExecPolicy,
    ) -> Result<Vec<Rho>> {
        if kernel.is_cutoff() {
            return self.rho_with_policy(dc, policy);
        }
        validate_dc(dc)?;
        kernel.validate()?;
        Ok(weighted_rho_query_with_policy(self, &self.dataset, dc, kernel, policy).0)
    }

    fn delta_with_policy(&self, dc: f64, rho: &[Rho], policy: ExecPolicy) -> Result<DeltaResult> {
        self.delta_with_config_policy(dc, rho, &self.config.delta, policy)
            .map(|(result, _)| result)
    }

    fn rho_delta_observed(
        &self,
        dc: f64,
        policy: ExecPolicy,
        rec: &dyn dpc_obs::Recorder,
    ) -> Result<(Vec<Rho>, DeltaResult)> {
        validate_dc(dc)?;
        Ok(rho_delta_query_recorded(
            self,
            &self.dataset,
            dc,
            self.config.tie_break,
            &self.config.delta,
            policy,
            rec,
        ))
    }

    fn memory_bytes(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<RNode>()
                    + match &n.kind {
                        NodeKind::Leaf { points } => points.capacity() * std::mem::size_of::<u32>(),
                        NodeKind::Internal { children } => {
                            children.capacity() * std::mem::size_of::<NodeId>()
                        }
                    }
            })
            .sum();
        let maps = (self.leaf_of.capacity() + self.free.capacity()) * std::mem::size_of::<NodeId>();
        node_bytes + maps + self.dataset.memory_bytes()
    }

    fn stats(&self) -> IndexStats {
        IndexStats::new(self.construction_time, self.memory_bytes())
            // Live structure, not the arena bound (`num_nodes` includes
            // free-listed slots awaiting reuse after dissolves).
            .with_counter("nodes", (self.nodes.len() - self.free.len()) as u64)
            .with_counter("leaves", self.leaf_count() as u64)
            .with_counter("height", self.height() as u64)
            .with_counter("fanout", self.config.node_capacity as u64)
            .with_counter("forced_reinserts", self.forced_reinserts)
            .with_counter("node_splits", self.node_splits)
            .with_counter("nodes_dissolved", self.nodes_dissolved)
    }

    fn tie_break(&self) -> TieBreak {
        self.config.tie_break
    }
}

impl UpdatableIndex for RTree {
    fn insert(&mut self, p: Point) -> Result<PointId> {
        let id = self.dataset.push(p)?;
        self.leaf_of.push(0); // placeholder, set by insert_entry
                              // Outside a batch every insert gets its own forced-reinsertion
                              // round; inside one, the batch's shared round gates it.
        let may_reinsert = self.batch_reinsert.unwrap_or(true);
        self.insert_entry(id as u32, may_reinsert);
        Ok(id)
    }

    fn apply_batch(&mut self, ops: &[dpc_core::BatchOp]) -> Result<()> {
        // A single-op batch is exactly a per-update mutation; skip the
        // shared-round bookkeeping (one op gets one round either way).
        if let [op] = ops {
            return match *op {
                dpc_core::BatchOp::Insert(p) => self.insert(p).map(drop),
                dpc_core::BatchOp::Remove(id) => self.remove(id).map(drop),
            };
        }
        self.batch_reinsert = Some(true);
        let result = ops.iter().try_for_each(|op| match *op {
            dpc_core::BatchOp::Insert(p) => self.insert(p).map(drop),
            dpc_core::BatchOp::Remove(id) => self.remove(id).map(drop),
        });
        self.batch_reinsert = None;
        result
    }

    fn remove(&mut self, id: PointId) -> Result<Option<PointId>> {
        let n = self.dataset.len();
        if id >= n {
            return Err(DpcError::invalid_parameter(
                "id",
                format!("RTree::remove: point id {id} is out of range (n = {n})"),
            ));
        }
        let last = n - 1;
        let leaf = self.leaf_of[id];
        let moved_leaf = self.leaf_of[last];
        let moved = self.dataset.swap_remove(id)?;

        if let NodeKind::Leaf { points } = &mut self.nodes[leaf].kind {
            let pos = points
                .iter()
                .position(|&q| q as PointId == id)
                .expect("RTree: removed point must be listed in its leaf");
            points.swap_remove(pos);
        }
        // Mirror the dataset's swap-remove rename (last → id).
        if moved.is_some() {
            if let NodeKind::Leaf { points } = &mut self.nodes[moved_leaf].kind {
                let pos = points
                    .iter()
                    .position(|&q| q as PointId == last)
                    .expect("RTree: moved point must be listed in its leaf");
                points[pos] = id as u32;
            }
            self.leaf_of[id] = moved_leaf;
        }
        self.leaf_of.pop();

        if self.dataset.is_empty() {
            self.nodes.clear();
            self.free.clear();
            self.root = None;
            return Ok(moved);
        }

        let leaf_len = match &self.nodes[leaf].kind {
            NodeKind::Leaf { points } => points.len(),
            NodeKind::Internal { .. } => unreachable!("leaf_of pointed at an internal node"),
        };
        if self.root != Some(leaf) && leaf_len < self.min_fill_count() {
            // CondenseTree: dissolve the underfull leaf, prune emptied
            // ancestors, then reinsert the survivors from the top.
            self.nodes_dissolved += 1;
            let orphans: Vec<u32> = match &mut self.nodes[leaf].kind {
                NodeKind::Leaf { points } => std::mem::take(points),
                NodeKind::Internal { .. } => unreachable!(),
            };
            let mut anchor = self.nodes[leaf].parent;
            self.detach_child(anchor, leaf);
            while self.root != Some(anchor) && self.children(anchor).is_empty() {
                self.nodes_dissolved += 1;
                let parent = self.nodes[anchor].parent;
                self.detach_child(parent, anchor);
                anchor = parent;
            }
            if self.root == Some(anchor) && self.children(anchor).is_empty() {
                // The whole structure emptied out; the orphans rebuild it.
                self.free.push(anchor);
                self.root = None;
            } else {
                self.refresh_upward(anchor);
            }
            for orphan in orphans {
                self.insert_entry(orphan, false);
            }
        } else {
            // Bbox shrinking: re-tighten the whole path above the leaf.
            self.refresh_upward(leaf);
        }

        // A root with a single child loses a level (keeps every leaf at the
        // same, now smaller, depth).
        while let Some(root) = self.root {
            let only = match &self.nodes[root].kind {
                NodeKind::Internal { children } if children.len() == 1 => Some(children[0]),
                _ => None,
            };
            let Some(child) = only else { break };
            self.nodes_dissolved += 1;
            self.free.push(root);
            self.nodes[child].parent = child;
            self.root = Some(child);
        }
        Ok(moved)
    }

    fn rebuild_from(&mut self, dataset: Dataset) -> Result<()> {
        // Bulk load: one fresh build over the new window instead of n
        // insert-entry descents with their forced-reinsertion rounds. The
        // adopted dataset keeps the caller's id order and version history;
        // the lifetime maintenance counters carry over (a bulk load incurs
        // no reinsertion, split or dissolve).
        let config = self.config;
        let forced_reinserts = self.forced_reinserts;
        let node_splits = self.node_splits;
        let nodes_dissolved = self.nodes_dissolved;
        *self = RTree::with_config(&dataset, &config);
        self.forced_reinserts = forced_reinserts;
        self.node_splits = node_splits;
        self.nodes_dissolved = nodes_dissolved;
        Ok(())
    }

    fn eps_neighbors(&self, center: Point, eps: f64) -> Result<Vec<PointId>> {
        validate_dc(eps)?;
        Ok(eps_query(self, &self.dataset, center, eps))
    }

    fn maintenance_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("forced_reinserts", self.forced_reinserts),
            ("node_splits", self.node_splits),
            ("nodes_dissolved", self.nodes_dissolved),
        ]
    }

    fn check_invariants(&self) {
        self.check_structure();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadtree::Quadtree;
    use dpc_baseline::LeanDpc;
    use dpc_core::index::eps_neighbors_scan;
    use dpc_datasets::generators::{checkins, range, s1, CheckinConfig};
    use dpc_datasets::testsupport::{test_points, TestDistribution};

    fn assert_matches_baseline(data: &Dataset, tree: &RTree, dc: f64) {
        let baseline = LeanDpc::build(data);
        let (r1, d1) = tree.rho_delta(dc).unwrap();
        let (r2, d2) = baseline.rho_delta(dc).unwrap();
        assert_eq!(r1, r2, "rho mismatch at dc = {dc}");
        assert_eq!(d1.mu, d2.mu, "mu mismatch at dc = {dc}");
        for p in 0..data.len() {
            assert!(
                (d1.delta(p) - d2.delta(p)).abs() < 1e-9,
                "dc = {dc}, p = {p}"
            );
        }
    }

    #[test]
    fn str_groups_respect_capacity_and_cover_all_items() {
        let coords: Vec<(f64, f64)> = (0..137)
            .map(|i| (i as f64 * 0.7, (i % 13) as f64))
            .collect();
        let groups = str_groups(&coords, 10);
        let mut seen = vec![false; coords.len()];
        for g in &groups {
            assert!(!g.is_empty() && g.len() <= 10);
            for &i in g {
                assert!(!seen[i], "item {i} grouped twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn quadratic_partition_covers_and_fills_both_groups() {
        let boxes: Vec<BoundingBox> = (0..9)
            .map(|i| BoundingBox::from_point(Point::new(i as f64, (i * i % 5) as f64)))
            .collect();
        let (a, b) = quadratic_partition(&boxes, 3);
        assert!(a.len() >= 3 && b.len() >= 3);
        let mut all: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn structure_invariants_hold_and_tree_is_balanced() {
        let data = range(137, 0.004).into_dataset(); // 800 points
        let tree = RTree::build(&data);
        tree.check_structure();
        // Height must be logarithmic in n with fanout 32: 800 points -> 3 levels.
        assert!(tree.height() <= 3, "height = {}", tree.height());
    }

    #[test]
    fn matches_baseline_on_s1() {
        let data = s1(139, 0.06).into_dataset(); // 300 points
        let tree = RTree::build(&data);
        for dc in [5_000.0, 30_000.0, 200_000.0, 1_500_000.0] {
            assert_matches_baseline(&data, &tree, dc);
        }
    }

    #[test]
    fn matches_baseline_on_skewed_checkins() {
        let data = checkins(400, &CheckinConfig::brightkite(), 11).into_dataset();
        let tree = RTree::build(&data);
        for dc in [0.005, 0.05, 1.0] {
            assert_matches_baseline(&data, &tree, dc);
        }
    }

    #[test]
    fn matches_quadtree_results_exactly() {
        let data = range(149, 0.002).into_dataset(); // 400 points
        let rtree = RTree::build(&data);
        let quadtree = Quadtree::build(&data);
        for dc in [500.0, 2_200.0, 10_000.0] {
            let (r1, d1) = rtree.rho_delta(dc).unwrap();
            let (r2, d2) = quadtree.rho_delta(dc).unwrap();
            assert_eq!(r1, r2);
            assert_eq!(d1.mu, d2.mu);
        }
    }

    #[test]
    fn small_fanout_still_correct() {
        let data = s1(151, 0.03).into_dataset(); // 150 points
        let config = RTreeConfig {
            node_capacity: 3,
            ..Default::default()
        };
        let tree = RTree::with_config(&data, &config);
        tree.check_structure();
        assert_matches_baseline(&data, &tree, 40_000.0);
    }

    #[test]
    fn pruning_reduces_work_but_not_results() {
        let data = s1(157, 0.1).into_dataset(); // 500 points
        let tree = RTree::build(&data);
        let dc = 30_000.0;
        let rho = tree.rho(dc).unwrap();
        let (d_pruned, s_pruned) = tree
            .delta_with_config(dc, &rho, &DeltaQueryConfig::default())
            .unwrap();
        let (d_full, s_full) = tree
            .delta_with_config(dc, &rho, &DeltaQueryConfig::no_pruning())
            .unwrap();
        assert_eq!(d_pruned.mu, d_full.mu);
        assert!(s_pruned.points_scanned < s_full.points_scanned);
    }

    #[test]
    fn memory_is_near_linear() {
        let small = RTree::build(&s1(163, 0.04).into_dataset()); // 200
        let large = RTree::build(&s1(163, 0.4).into_dataset()); // 2000
        let ratio = large.memory_bytes() as f64 / small.memory_bytes() as f64;
        assert!(ratio < 20.0, "memory grew superlinearly: ratio = {ratio}");
    }

    #[test]
    fn empty_and_single_point_trees() {
        let empty = RTree::build(&Dataset::new(vec![]));
        assert_eq!(empty.num_nodes(), 0);
        assert!(empty.rho(1.0).unwrap().is_empty());

        let single = RTree::build(&Dataset::new(vec![dpc_core::Point::new(3.0, 4.0)]));
        single.check_structure();
        let (rho, deltas) = single.rho_delta(1.0).unwrap();
        assert_eq!(rho, vec![0.0]);
        assert_eq!(deltas.mu(0), None);
    }

    #[test]
    fn stats_expose_structure() {
        let data = s1(167, 0.1).into_dataset();
        let tree = RTree::build(&data);
        let stats = tree.stats();
        assert!(stats.counter("nodes").unwrap() >= stats.counter("leaves").unwrap());
        assert_eq!(stats.counter("fanout"), Some(32));
    }

    #[test]
    fn updates_match_a_fresh_build_and_the_baseline() {
        let data = checkins(200, &CheckinConfig::gowalla(), 23).into_dataset();
        let mut tree = RTree::build(&data);
        let bb = data.bounding_box();
        tree.insert(Point::new(bb.max_x() + 5.0, bb.max_y() + 5.0))
            .unwrap();
        tree.insert(Point::new(bb.min_x() - 3.0, bb.min_y()))
            .unwrap();
        tree.insert(data.point(7)).unwrap();
        assert_eq!(tree.remove(3).unwrap(), Some(tree.len()));
        assert_eq!(tree.remove(tree.len() - 1).unwrap(), None);
        tree.check_structure();
        for dc in [0.05, 0.4, 20.0] {
            assert_matches_baseline(tree.dataset(), &tree, dc);
            let fresh = RTree::build(tree.dataset());
            let (r1, d1) = tree.rho_delta(dc).unwrap();
            let (r2, d2) = fresh.rho_delta(dc).unwrap();
            assert_eq!(r1, r2, "rho vs fresh build at dc = {dc}");
            assert_eq!(d1, d2, "delta vs fresh build at dc = {dc}");
        }
    }

    #[test]
    fn tree_grown_from_empty_overflows_into_splits_and_reinserts() {
        let mut tree = RTree::with_config(
            &Dataset::new(vec![]),
            &RTreeConfig {
                node_capacity: 4,
                ..Default::default()
            },
        );
        for p in test_points(TestDistribution::Clustered, 250, 29) {
            tree.insert(p).unwrap();
        }
        tree.check_structure();
        assert!(tree.node_splits() > 0);
        assert!(tree.forced_reinserts() > 0);
        assert_matches_baseline(tree.dataset(), &tree, 120.0);
    }

    #[test]
    fn draining_shrinks_boxes_and_dissolves_nodes() {
        let data = Dataset::new(test_points(TestDistribution::Uniform, 300, 31));
        let mut tree = RTree::with_config(
            &data,
            &RTreeConfig {
                node_capacity: 8,
                ..Default::default()
            },
        );
        let full_bbox = tree.bbox(tree.root().unwrap());
        // Remove everything in the right half of the domain; the root box
        // must shrink to exclude it (bbox shrinking, not conservative decay).
        let mid_x = (full_bbox.min_x() + full_bbox.max_x()) / 2.0;
        let mut id = 0;
        while id < tree.len() {
            if tree.dataset().point(id).x > mid_x {
                tree.remove(id).unwrap();
            } else {
                id += 1;
            }
        }
        tree.check_structure();
        assert!(tree.nodes_dissolved() > 0);
        let shrunk = tree.bbox(tree.root().unwrap());
        assert!(
            shrunk.max_x() <= mid_x,
            "root box did not shrink: max_x = {} vs mid_x = {mid_x}",
            shrunk.max_x()
        );
        assert_matches_baseline(tree.dataset(), &tree, 200.0);
    }

    #[test]
    fn rebuild_from_bulk_loads_and_carries_counters() {
        let data = Dataset::new(test_points(TestDistribution::Clustered, 180, 9));
        let mut tree = RTree::build(&data);
        for p in test_points(TestDistribution::Uniform, 40, 11) {
            tree.insert(p).unwrap();
        }
        let counters = (
            tree.forced_reinserts(),
            tree.node_splits(),
            tree.nodes_dissolved(),
        );
        assert!(counters.1 > 0);
        // A replacement window with real version history, as the streaming
        // engine's rebuild path materialises it.
        let mut window = tree.dataset().clone();
        for p in test_points(TestDistribution::Skewed, 30, 13) {
            window.push(p).unwrap();
        }
        window.swap_remove(5).unwrap();
        let version = window.version();
        tree.rebuild_from(window.clone()).unwrap();
        tree.check_structure();
        assert_eq!(tree.dataset().points(), window.points());
        assert_eq!(tree.dataset().version(), version);
        // A bulk load incurs no reinsertion, split or dissolve: the lifetime
        // counters carry over unchanged.
        assert_eq!(
            (
                tree.forced_reinserts(),
                tree.node_splits(),
                tree.nodes_dissolved(),
            ),
            counters
        );
        assert_matches_baseline(&window, &tree, 150.0);
    }

    #[test]
    fn eps_neighbors_matches_linear_scan_through_updates() {
        let data = Dataset::new(test_points(TestDistribution::Skewed, 120, 13));
        let mut tree = RTree::with_config(
            &data,
            &RTreeConfig {
                node_capacity: 6,
                ..Default::default()
            },
        );
        for step in 0..60 {
            if step % 3 == 0 && tree.len() > 1 {
                tree.remove(step % tree.len()).unwrap();
            } else {
                let p = test_points(TestDistribution::Uniform, 1, 2000 + step as u64)[0];
                tree.insert(p).unwrap();
            }
            let center = tree.dataset().point(step % tree.len());
            let got = tree.eps_neighbors(center, 90.0).unwrap();
            let expected = eps_neighbors_scan(tree.dataset(), center, 90.0).unwrap();
            assert_eq!(got, expected, "step {step}");
        }
        assert!(tree.eps_neighbors(Point::new(0.0, 0.0), -1.0).is_err());
    }

    #[test]
    fn remove_rejects_out_of_range_ids_and_drains_to_empty() {
        let mut tree = RTree::build(&s1(171, 0.01).into_dataset());
        let n = tree.len();
        assert!(tree.remove(n).is_err());
        assert_eq!(tree.len(), n);
        while tree.len() > 0 {
            tree.remove(tree.len() / 2).unwrap();
        }
        assert_eq!(tree.root(), None);
        assert!(tree.rho(1.0).unwrap().is_empty());
        tree.insert(Point::new(1.0, 2.0)).unwrap();
        assert_eq!(tree.rho(1.0).unwrap(), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn capacity_below_two_panics() {
        RTree::with_config(
            &Dataset::new(vec![]),
            &RTreeConfig {
                node_capacity: 1,
                ..Default::default()
            },
        );
    }
}
