//! Test-only helpers shared by the modules of this crate.
//!
//! This module holds *structural* fixtures only (a trivially-correct
//! [`SpatialPartition`] to test the generic query code and the invariant
//! checker against). Point-set generators live in
//! [`dpc_datasets::testsupport`], the shared test-support module every suite
//! in the workspace draws its distributions from — don't grow local ones
//! here.

use dpc_core::{BoundingBox, Dataset};

use crate::common::{NodeId, SpatialPartition};

/// A hand-rolled two-level partition (root + vertical strips) used to test
/// the invariant checker and the generic query code against a structure that
/// is trivially correct.
pub(crate) struct FlatPartition {
    pub(crate) boxes: Vec<BoundingBox>,
    pub(crate) members: Vec<Vec<u32>>,
    pub(crate) root_children: Vec<NodeId>,
    pub(crate) root_box: BoundingBox,
    pub(crate) total: usize,
}

impl FlatPartition {
    /// Partitions a dataset into vertical strips of the given width.
    pub(crate) fn strips(dataset: &Dataset, strip_width: f64) -> Self {
        let bb = dataset.bounding_box();
        let mut boxes = Vec::new();
        let mut members: Vec<Vec<u32>> = Vec::new();
        if !dataset.is_empty() {
            let strips = ((bb.width() / strip_width).ceil() as usize).max(1);
            for s in 0..strips {
                let lo = bb.min_x() + s as f64 * strip_width;
                let hi = (lo + strip_width).min(bb.max_x());
                boxes.push(BoundingBox::new(lo, bb.min_y(), hi.max(lo), bb.max_y()));
                members.push(Vec::new());
            }
            for (id, p) in dataset.iter() {
                let mut s = ((p.x - bb.min_x()) / strip_width) as usize;
                if s >= members.len() {
                    s = members.len() - 1;
                }
                members[s].push(id as u32);
            }
        }
        let root_children = (1..=boxes.len()).collect();
        FlatPartition {
            boxes,
            members,
            root_children,
            root_box: bb,
            total: dataset.len(),
        }
    }
}

impl SpatialPartition for FlatPartition {
    fn root(&self) -> Option<NodeId> {
        if self.total == 0 {
            None
        } else {
            Some(0)
        }
    }

    fn bbox(&self, node: NodeId) -> BoundingBox {
        if node == 0 {
            self.root_box
        } else {
            self.boxes[node - 1]
        }
    }

    fn point_count(&self, node: NodeId) -> usize {
        if node == 0 {
            self.total
        } else {
            self.members[node - 1].len()
        }
    }

    fn children(&self, node: NodeId) -> &[NodeId] {
        if node == 0 {
            &self.root_children
        } else {
            &[]
        }
    }

    fn points(&self, node: NodeId) -> &[u32] {
        if node == 0 {
            &[]
        } else {
            &self.members[node - 1]
        }
    }

    fn num_nodes(&self) -> usize {
        1 + self.boxes.len()
    }
}
