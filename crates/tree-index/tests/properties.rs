//! Property-based tests of the tree-based index structures: structural
//! invariants and query correctness on arbitrary point sets and parameters.

use dpc_baseline::LeanDpc;
use dpc_core::{Dataset, DensityOrder, DpcIndex};
use dpc_tree_index::common::check_partition_invariants;
use dpc_tree_index::query::{rho_query, subtree_max_density};
use dpc_tree_index::{
    DeltaQueryConfig, GridConfig, GridIndex, KdTree, KdTreeConfig, Quadtree, QuadtreeConfig, RTree,
    RTreeConfig, SpatialPartition,
};
use proptest::prelude::*;

fn coords_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-500.0f64..500.0, -500.0f64..500.0), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn quadtree_invariants_hold_for_any_capacity(
        coords in coords_strategy(),
        capacity in 1usize..16,
        max_depth in 4usize..16
    ) {
        let data = Dataset::from_coords(coords);
        let tree = Quadtree::with_config(
            &data,
            &QuadtreeConfig { node_capacity: capacity, max_depth, ..Default::default() },
        );
        check_partition_invariants(&tree, &data);
    }

    #[test]
    fn rtree_invariants_hold_for_any_fanout(coords in coords_strategy(), fanout in 2usize..20) {
        let data = Dataset::from_coords(coords);
        let tree = RTree::with_config(
            &data,
            &RTreeConfig { node_capacity: fanout, ..Default::default() },
        );
        check_partition_invariants(&tree, &data);
    }

    #[test]
    fn kdtree_invariants_hold_for_any_leaf_capacity(
        coords in coords_strategy(),
        capacity in 1usize..16
    ) {
        let data = Dataset::from_coords(coords);
        let tree = KdTree::with_config(
            &data,
            &KdTreeConfig { leaf_capacity: capacity, ..Default::default() },
        );
        check_partition_invariants(&tree, &data);
    }

    #[test]
    fn grid_invariants_hold_for_any_cell_size(
        coords in coords_strategy(),
        cell in 1.0f64..500.0
    ) {
        let data = Dataset::from_coords(coords);
        let grid = GridIndex::with_config(
            &data,
            &GridConfig { cell_size: Some(cell), ..Default::default() },
        );
        check_partition_invariants(&grid, &data);
    }

    #[test]
    fn all_trees_match_the_baseline_for_arbitrary_dc(
        coords in coords_strategy(),
        dc in 0.5f64..1500.0
    ) {
        let data = Dataset::from_coords(coords);
        let baseline = LeanDpc::build(&data);
        let (ref_rho, ref_delta) = baseline.rho_delta(dc).unwrap();

        let quadtree = Quadtree::build(&data);
        let rtree = RTree::build(&data);
        let kdtree = KdTree::build(&data);
        let grid = GridIndex::build(&data);
        let trees: [(&str, &dyn DpcIndex); 4] = [
            ("quadtree", &quadtree),
            ("rtree", &rtree),
            ("kdtree", &kdtree),
            ("grid", &grid),
        ];
        for (name, tree) in trees {
            let (rho, delta) = tree.rho_delta(dc).unwrap();
            prop_assert_eq!(&rho, &ref_rho, "{} rho", name);
            prop_assert_eq!(&delta.mu, &ref_delta.mu, "{} mu", name);
        }
    }

    #[test]
    fn subtree_max_density_bounds_every_member(
        coords in coords_strategy(),
        dc in 1.0f64..800.0
    ) {
        let data = Dataset::from_coords(coords);
        let tree = RTree::build(&data);
        let rho = rho_query(&tree, &data, dc);
        let maxrho = subtree_max_density(&tree, &rho);
        // For every node, maxrho equals the maximum density of the points in
        // its subtree (checked by walking leaves).
        if let Some(root) = tree.root() {
            let mut stack = vec![root];
            while let Some(node) = stack.pop() {
                let mut points = Vec::new();
                let mut inner = vec![node];
                while let Some(m) = inner.pop() {
                    points.extend(tree.points(m).iter().map(|&q| q as usize));
                    inner.extend_from_slice(tree.children(m));
                }
                let expected = points.iter().map(|&q| rho[q]).max().unwrap_or(0);
                prop_assert_eq!(maxrho[node], expected);
                stack.extend_from_slice(tree.children(node));
            }
        }
    }

    #[test]
    fn pruning_never_changes_the_delta_result(
        coords in coords_strategy(),
        dc in 0.5f64..1000.0
    ) {
        let data = Dataset::from_coords(coords);
        let tree = Quadtree::build(&data);
        let rho = DpcIndex::rho(&tree, dc).unwrap();
        let configs = [
            DeltaQueryConfig::default(),
            DeltaQueryConfig { density_pruning: true, distance_pruning: false },
            DeltaQueryConfig { density_pruning: false, distance_pruning: true },
            DeltaQueryConfig::no_pruning(),
        ];
        let reference = tree.delta_with_config(dc, &rho, &configs[3]).unwrap().0;
        for config in &configs[..3] {
            let (result, _) = tree.delta_with_config(dc, &rho, config).unwrap();
            prop_assert_eq!(&result.mu, &reference.mu);
            for p in 0..data.len() {
                prop_assert!((result.delta(p) - reference.delta(p)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn delta_result_is_structurally_valid_for_every_tree(
        coords in coords_strategy(),
        dc in 0.5f64..1000.0
    ) {
        let data = Dataset::from_coords(coords);
        for tree in [
            Box::new(Quadtree::build(&data)) as Box<dyn DpcIndex>,
            Box::new(RTree::build(&data)),
            Box::new(KdTree::build(&data)),
            Box::new(GridIndex::build(&data)),
        ] {
            let (rho, delta) = tree.rho_delta(dc).unwrap();
            let order = DensityOrder::new(&rho);
            delta.validate(&order).unwrap();
        }
    }

    #[test]
    fn node_counts_are_consistent_with_memory_accounting(coords in coords_strategy()) {
        let data = Dataset::from_coords(coords);
        let quadtree = Quadtree::build(&data);
        let rtree = RTree::build(&data);
        // The indices keep a copy of the points, so their footprint is at
        // least the point payload (compare against len * size_of::<Point>,
        // not Dataset::memory_bytes(), because the latter reports the
        // *capacity* of the caller's vector, which proptest may over-allocate).
        let point_payload = data.len() * std::mem::size_of::<dpc_core::Point>();
        prop_assert!(quadtree.memory_bytes() >= point_payload);
        prop_assert!(rtree.memory_bytes() >= point_payload);
        if !data.is_empty() {
            prop_assert!(quadtree.num_nodes() >= 1);
            prop_assert!(rtree.num_nodes() >= 1);
            prop_assert!(rtree.height() >= 1);
        }
    }
}
