//! Property-based tests of the tree-based index structures: structural
//! invariants and query correctness on arbitrary point sets and parameters.
//!
//! Point sets are drawn from the shared distributions of
//! [`dpc_datasets::testsupport`] (uniform, clustered, skewed, collinear), so
//! this suite and the streaming equivalence suite stress the indexes with
//! the same geometry.

use dpc_baseline::LeanDpc;
use dpc_core::index::{eps_neighbors_scan, weighted_rho_scan};
use dpc_core::{Dataset, DensityOrder, DpcIndex, ExecPolicy, Kernel, UpdatableIndex};
use dpc_datasets::testsupport::{test_points, TestDistribution, ALL_DISTRIBUTIONS};
use dpc_tree_index::common::check_partition_invariants;
use dpc_tree_index::query::{rho_query, subtree_max_density};
use dpc_tree_index::{
    DeltaQueryConfig, GridConfig, GridIndex, KdTree, KdTreeConfig, Quadtree, QuadtreeConfig, RTree,
    RTreeConfig, SpatialPartition,
};
use proptest::prelude::*;

fn distribution_strategy() -> impl Strategy<Value = TestDistribution> {
    prop_oneof![
        Just(TestDistribution::Uniform),
        Just(TestDistribution::Clustered),
        Just(TestDistribution::Skewed),
        Just(TestDistribution::Collinear),
    ]
}

/// Point sets from the shared test distributions; shrinks over size and
/// seed, which is what reproduces a failure.
fn coords_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (distribution_strategy(), 1usize..60, any::<u64>()).prop_map(|(dist, n, seed)| {
        test_points(dist, n, seed)
            .into_iter()
            .map(|p| (p.x, p.y))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn quadtree_invariants_hold_for_any_capacity(
        coords in coords_strategy(),
        capacity in 1usize..16,
        max_depth in 4usize..16
    ) {
        let data = Dataset::from_coords(coords);
        let tree = Quadtree::with_config(
            &data,
            &QuadtreeConfig { node_capacity: capacity, max_depth, ..Default::default() },
        );
        check_partition_invariants(&tree, &data);
    }

    #[test]
    fn rtree_invariants_hold_for_any_fanout(coords in coords_strategy(), fanout in 2usize..20) {
        let data = Dataset::from_coords(coords);
        let tree = RTree::with_config(
            &data,
            &RTreeConfig { node_capacity: fanout, ..Default::default() },
        );
        check_partition_invariants(&tree, &data);
    }

    #[test]
    fn kdtree_invariants_hold_for_any_leaf_capacity(
        coords in coords_strategy(),
        capacity in 1usize..16
    ) {
        let data = Dataset::from_coords(coords);
        let tree = KdTree::with_config(
            &data,
            &KdTreeConfig { leaf_capacity: capacity, ..Default::default() },
        );
        check_partition_invariants(&tree, &data);
    }

    #[test]
    fn grid_invariants_hold_for_any_cell_size(
        coords in coords_strategy(),
        cell in 1.0f64..500.0
    ) {
        let data = Dataset::from_coords(coords);
        let grid = GridIndex::with_config(
            &data,
            &GridConfig { cell_size: Some(cell), ..Default::default() },
        );
        check_partition_invariants(&grid, &data);
    }

    #[test]
    fn all_trees_match_the_baseline_for_arbitrary_dc(
        coords in coords_strategy(),
        dc in 0.5f64..1500.0
    ) {
        let data = Dataset::from_coords(coords);
        let baseline = LeanDpc::build(&data);
        let (ref_rho, ref_delta) = baseline.rho_delta(dc).unwrap();

        let quadtree = Quadtree::build(&data);
        let rtree = RTree::build(&data);
        let kdtree = KdTree::build(&data);
        let grid = GridIndex::build(&data);
        let trees: [(&str, &dyn DpcIndex); 4] = [
            ("quadtree", &quadtree),
            ("rtree", &rtree),
            ("kdtree", &kdtree),
            ("grid", &grid),
        ];
        for (name, tree) in trees {
            let (rho, delta) = tree.rho_delta(dc).unwrap();
            prop_assert_eq!(&rho, &ref_rho, "{} rho", name);
            prop_assert_eq!(&delta.mu, &ref_delta.mu, "{} mu", name);
        }
    }

    /// The tree-accelerated weighted ρ traversal is **bit-identical** to the
    /// canonical brute-force scan for every truncated kernel, tree family and
    /// thread count, and the cutoff kernel routes through the exact integer
    /// counting path — the contract that lets kernels be swapped under every
    /// index without perturbing a single bit downstream.
    #[test]
    fn weighted_rho_matches_the_scan_for_every_tree(
        coords in coords_strategy(),
        dc in 0.5f64..1500.0,
        bandwidth in 1.0f64..2000.0
    ) {
        let data = Dataset::from_coords(coords);
        let quadtree = Quadtree::build(&data);
        let rtree = RTree::build(&data);
        let kdtree = KdTree::build(&data);
        let grid = GridIndex::build(&data);
        let trees: [(&str, &dyn DpcIndex); 4] = [
            ("quadtree", &quadtree),
            ("rtree", &rtree),
            ("kdtree", &kdtree),
            ("grid", &grid),
        ];
        for kernel in [Kernel::gaussian(bandwidth), Kernel::exponential(bandwidth)] {
            let reference = weighted_rho_scan(&data, dc, kernel, ExecPolicy::Sequential).unwrap();
            for (name, tree) in trees {
                for threads in [1usize, 4] {
                    let rho = tree
                        .rho_kernel_with_policy(dc, kernel, ExecPolicy::Threads(threads))
                        .unwrap();
                    prop_assert_eq!(
                        &rho, &reference,
                        "{} {} threads={}", name, kernel.name(), threads
                    );
                }
            }
        }
        for (name, tree) in trees {
            let counted = tree.rho(dc).unwrap();
            let cutoff = tree.rho_kernel(dc, Kernel::Cutoff).unwrap();
            prop_assert_eq!(&cutoff, &counted, "{} cutoff kernel", name);
        }
    }

    #[test]
    fn subtree_max_density_bounds_every_member(
        coords in coords_strategy(),
        dc in 1.0f64..800.0
    ) {
        let data = Dataset::from_coords(coords);
        let tree = RTree::build(&data);
        let rho = rho_query(&tree, &data, dc);
        let maxrho = subtree_max_density(&tree, &rho);
        // For every node, maxrho equals the maximum density of the points in
        // its subtree (checked by walking leaves).
        if let Some(root) = tree.root() {
            let mut stack = vec![root];
            while let Some(node) = stack.pop() {
                let mut points = Vec::new();
                let mut inner = vec![node];
                while let Some(m) = inner.pop() {
                    points.extend(tree.points(m).iter().map(|&q| q as usize));
                    inner.extend_from_slice(tree.children(m));
                }
                let expected = points.iter().map(|&q| rho[q]).fold(0.0f64, f64::max);
                prop_assert_eq!(maxrho[node], expected);
                stack.extend_from_slice(tree.children(node));
            }
        }
    }

    #[test]
    fn pruning_never_changes_the_delta_result(
        coords in coords_strategy(),
        dc in 0.5f64..1000.0
    ) {
        let data = Dataset::from_coords(coords);
        let tree = Quadtree::build(&data);
        let rho = DpcIndex::rho(&tree, dc).unwrap();
        let configs = [
            DeltaQueryConfig::default(),
            DeltaQueryConfig { density_pruning: true, distance_pruning: false },
            DeltaQueryConfig { density_pruning: false, distance_pruning: true },
            DeltaQueryConfig::no_pruning(),
        ];
        let reference = tree.delta_with_config(dc, &rho, &configs[3]).unwrap().0;
        for config in &configs[..3] {
            let (result, _) = tree.delta_with_config(dc, &rho, config).unwrap();
            prop_assert_eq!(&result.mu, &reference.mu);
            for p in 0..data.len() {
                prop_assert!((result.delta(p) - reference.delta(p)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn delta_result_is_structurally_valid_for_every_tree(
        coords in coords_strategy(),
        dc in 0.5f64..1000.0
    ) {
        let data = Dataset::from_coords(coords);
        for tree in [
            Box::new(Quadtree::build(&data)) as Box<dyn DpcIndex>,
            Box::new(RTree::build(&data)),
            Box::new(KdTree::build(&data)),
            Box::new(GridIndex::build(&data)),
        ] {
            let (rho, delta) = tree.rho_delta(dc).unwrap();
            let order = DensityOrder::new(&rho);
            delta.validate(&order).unwrap();
        }
    }

    /// The updatable tree indexes stay structurally sound and query-exact
    /// through arbitrary insert/remove interleavings, on every shared
    /// distribution: after each mutation the structural invariants hold and
    /// the ε-query sees exactly the live points (no tombstone leaks).
    #[test]
    fn updatable_trees_survive_random_update_sequences(
        dist in distribution_strategy(),
        n in 2usize..40,
        seed in any::<u64>(),
        ops in prop::collection::vec((any::<bool>(), 0usize..1000, any::<u64>()), 1..30)
    ) {
        let initial = Dataset::new(test_points(dist, n, seed));
        let mut kd = KdTree::with_config(
            &initial,
            &KdTreeConfig { leaf_capacity: 4, ..Default::default() },
        );
        let mut rt = RTree::with_config(
            &initial,
            &RTreeConfig { node_capacity: 4, ..Default::default() },
        );
        for &(insert, sel, pseed) in &ops {
            if insert || kd.len() == 0 {
                let p = test_points(dist, 1, pseed)[0];
                let a = UpdatableIndex::insert(&mut kd, p).unwrap();
                let b = UpdatableIndex::insert(&mut rt, p).unwrap();
                prop_assert_eq!(a, b);
            } else {
                let victim = sel % kd.len();
                let a = kd.remove(victim).unwrap();
                let b = rt.remove(victim).unwrap();
                prop_assert_eq!(a, b);
            }
            kd.check_invariants();
            rt.check_invariants();
            if kd.len() > 0 {
                let center = kd.dataset().point(sel % kd.len());
                let expected = eps_neighbors_scan(kd.dataset(), center, 50.0).unwrap();
                prop_assert_eq!(&kd.eps_neighbors(center, 50.0).unwrap(), &expected);
                prop_assert_eq!(&rt.eps_neighbors(center, 50.0).unwrap(), &expected);
            }
        }
        if kd.len() > 0 {
            let baseline = LeanDpc::build(kd.dataset());
            let (ref_rho, ref_delta) = baseline.rho_delta(40.0).unwrap();
            for tree in [&kd as &dyn DpcIndex, &rt] {
                let (rho, delta) = tree.rho_delta(40.0).unwrap();
                prop_assert_eq!(&rho, &ref_rho, "{} rho after updates", tree.name());
                prop_assert_eq!(&delta.mu, &ref_delta.mu, "{} mu after updates", tree.name());
            }
        }
    }

    #[test]
    fn node_counts_are_consistent_with_memory_accounting(coords in coords_strategy()) {
        let data = Dataset::from_coords(coords);
        let quadtree = Quadtree::build(&data);
        let rtree = RTree::build(&data);
        // The indices keep a copy of the points, so their footprint is at
        // least the point payload (compare against len * size_of::<Point>,
        // not Dataset::memory_bytes(), because the latter reports the
        // *capacity* of the caller's vector, which proptest may over-allocate).
        let point_payload = data.len() * std::mem::size_of::<dpc_core::Point>();
        prop_assert!(quadtree.memory_bytes() >= point_payload);
        prop_assert!(rtree.memory_bytes() >= point_payload);
        if !data.is_empty() {
            prop_assert!(quadtree.num_nodes() >= 1);
            prop_assert!(rtree.num_nodes() >= 1);
            prop_assert!(rtree.height() >= 1);
        }
    }
}

/// Every index family passes the structural invariants on every shared
/// distribution — in particular the collinear one, whose zero-area boxes and
/// duplicate coordinates are the classic way to break median splits and
/// area-based R-tree heuristics.
#[test]
fn all_indexes_handle_every_shared_distribution() {
    for dist in ALL_DISTRIBUTIONS {
        let data = Dataset::new(test_points(dist, 150, 42));
        check_partition_invariants(&Quadtree::build(&data), &data);
        KdTree::build(&data).check_structure();
        RTree::build(&data).check_structure();
        GridIndex::build(&data).check_structure();
    }
}
