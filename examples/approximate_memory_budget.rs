//! The approximate RN-List solution under a memory budget.
//!
//! ```text
//! cargo run --release --example approximate_memory_budget
//! ```
//!
//! The full List Index stores every pairwise neighbour and quickly outgrows
//! memory. The paper's §3.3 answer is to keep only neighbours within a
//! threshold `τ`. This example sweeps `τ` on a Birch-like dataset and prints
//! memory, query time and clustering quality relative to the exact result —
//! reproducing the qualitative story of Figures 8–10: quality stays ≈ 1.0
//! while `τ ≥ dc` and collapses below it, while memory shrinks dramatically.

use density_peaks::prelude::*;

fn main() {
    let kind = DatasetKind::Birch;
    let data = kind.generate(11, 0.03).into_dataset(); // 3 000 points
    let dc = 100_000.0;
    let k = 100.min(data.len() / 10);
    let params = DpcParams::new(dc).with_centers(CenterSelection::TopKGamma { k });

    // Exact reference: full List Index.
    let exact = ListIndex::build(&data);
    let reference = cluster_with_index(&exact, &params).expect("exact clustering");
    println!(
        "exact List Index: {:.1} MiB, {} clusters\n",
        exact.memory_bytes() as f64 / (1024.0 * 1024.0),
        reference.num_clusters()
    );

    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>10}",
        "tau", "memory MiB", "vs exact", "F1", "ARI"
    );
    for tau in [10_000.0, 50_000.0, 100_000.0, 150_000.0, 250_000.0] {
        let approx = ListIndex::build_approx(&data, tau);
        let obtained = cluster_with_index(&approx, &params).expect("approximate clustering");
        let scores = pair_counting_scores_for(&obtained, &reference);
        let o: Vec<_> = obtained.labels().iter().map(|&l| Some(l)).collect();
        let r: Vec<_> = reference.labels().iter().map(|&l| Some(l)).collect();
        let ari = adjusted_rand_index(&o, &r);
        let mem = approx.memory_bytes() as f64 / (1024.0 * 1024.0);
        println!(
            "{:>10} {:>12.2} {:>11.1}% {:>10.3} {:>10.3}",
            tau,
            mem,
            100.0 * approx.memory_bytes() as f64 / exact.memory_bytes() as f64,
            scores.f1,
            ari
        );
    }

    println!("\ntau >= dc ({dc}) keeps the clustering essentially exact;");
    println!(
        "smaller tau saves memory but loses the dependent neighbours and the quality collapses."
    );
}
