//! Geospatial scenario: finding activity hotspots in location check-ins and
//! watching how the clustering changes with the cut-off distance `dc`.
//!
//! ```text
//! cargo run --release --example checkin_hotspots
//! ```
//!
//! This is the motivating workload of the paper (its Figure 1 uses Gowalla
//! check-ins): a user explores several `dc` values before settling on a
//! clustering, and the index makes every additional `dc` almost free because
//! it is built only once.

use density_peaks::datasets::generators::{checkins, CheckinConfig};
use density_peaks::prelude::*;

fn main() {
    let config = CheckinConfig::gowalla();
    let data = checkins(8_000, &config, 2026).into_dataset();
    println!(
        "simulated {} check-ins over a {:.0}°×{:.0}° region\n",
        data.len(),
        data.bounding_box().width(),
        data.bounding_box().height()
    );

    // One R-tree, many dc values: the index is built once.
    let index = RTree::build(&data);
    println!(
        "index: {} ({} KiB)\n",
        index.name(),
        index.memory_bytes() / 1024
    );

    for dc in [0.05, 0.2, 1.0, 5.0] {
        // Check-in data is heavily skewed (a few huge hotspots, many small
        // ones), so instead of an automatic knee heuristic we use the rule a
        // user would apply on the decision graph: a centre has above-average
        // density and is itself a peak at scale dc (its nearest denser point
        // is farther than dc away).
        let rho = index.rho(dc).expect("rho query");
        let mean_rho = (rho.iter().sum::<f64>() / rho.len() as f64).ceil();
        let params = DpcParams::new(dc).with_centers(CenterSelection::Threshold {
            rho_min: mean_rho.max(1.0),
            delta_min: dc,
        });
        let run = DpcPipeline::new(params)
            .run(&index)
            .expect("clustering failed");
        let mut sizes = run.clustering.sizes();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let top: Vec<usize> = sizes.iter().copied().take(5).collect();
        println!(
            "dc = {dc:>5}: {:>3} hotspots, top-5 sizes {:?}, query {:.1} ms",
            run.clustering.num_clusters(),
            top,
            run.query_time().as_secs_f64() * 1e3
        );
        // Show where the biggest hotspot is.
        let biggest_center = run.clustering.centers()[0];
        let p = data.point(biggest_center);
        println!(
            "          densest hotspot centre near ({:.2}, {:.2})",
            p.x, p.y
        );
    }

    println!("\nDifferent dc values give genuinely different clusterings —");
    println!("which is why the paper indexes the data instead of re-running DPC from scratch.");
}
