//! Clustering without hand-picking `dc`: the quantile heuristic and the
//! kNN-density variant.
//!
//! ```text
//! cargo run --release --example dc_free_clustering
//! ```
//!
//! The paper's whole premise is that `dc` is hard to pick and will be retried
//! many times. This example shows the two mitigations shipped with this
//! workspace:
//!
//! 1. the classic rule of thumb — pick `dc` so that points have on average
//!    1–2 % of the dataset as neighbours ([`estimate_dc`]) — as a starting
//!    point for the interactive search, and
//! 2. the kNN-density variant ([`KnnDpc`], following the paper's related
//!    work), which replaces `dc` with a neighbour count `k` entirely.

use density_peaks::prelude::*;

fn main() {
    // A Birch-like dataset: 100 clusters on a 10x10 grid.
    let labelled = density_peaks::datasets::generators::birch(7, 0.05); // 5 000 points
    let data = labelled.dataset.clone();
    let truth = &labelled.labels;
    println!(
        "dataset: {} points, {} generating clusters\n",
        data.len(),
        labelled.num_components()
    );

    // --- Variant 1: estimate dc, then run classic DPC through an index. ---
    // With 100 clusters each holding ~1% of the data, the neighbour-fraction
    // target must stay below the per-cluster share; 0.5% is a good default
    // for strongly clustered data.
    let dc = DcEstimation::with_fraction(0.005)
        .estimate(&data)
        .expect("dc estimation");
    println!("estimated dc (0.5% neighbour rule): {dc:.0}");
    let index = RTree::build(&data);
    let params = DpcParams::new(dc).with_centers(CenterSelection::TopKGamma { k: 100 });
    let classic = cluster_with_index(&index, &params).expect("classic DPC");
    let classic_labels: Vec<_> = classic.labels().iter().map(|&l| Some(l)).collect();
    println!(
        "classic DPC @ estimated dc: {} clusters, ARI vs generator = {:.3}\n",
        classic.num_clusters(),
        adjusted_rand_index(&classic_labels, truth)
    );

    // --- Variant 2: kNN-density DPC, no dc anywhere. ---
    let knn = KnnDpc::build(&data);
    for k in [8, 16, 32] {
        let clustering = knn
            .cluster(k, &CenterSelection::TopKGamma { k: 100 })
            .expect("kNN DPC");
        let labels: Vec<_> = clustering.labels().iter().map(|&l| Some(l)).collect();
        println!(
            "kNN-DPC with k = {k:>2}: {} clusters, ARI vs generator = {:.3}",
            clustering.num_clusters(),
            adjusted_rand_index(&labels, truth)
        );
    }

    println!("\nBoth variants reuse the same neighbour lists / spatial indices,");
    println!("so trying another k or dc costs only a query, not a rebuild.");
}
