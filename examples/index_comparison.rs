//! Compare every index structure on the same dataset: identical results,
//! very different costs.
//!
//! ```text
//! cargo run --release --example index_comparison
//! ```
//!
//! This is the paper's core message in one program: the List and CH indices
//! answer the two DPC queries fastest but pay quadratic memory and
//! construction cost, while the tree indices stay near-linear in memory and
//! build almost instantly — and all of them produce exactly the same
//! clustering as the naive O(n²) algorithm.

use std::time::Instant;

use density_peaks::prelude::*;

fn main() {
    let kind = DatasetKind::Range;
    let data = kind.generate(7, 0.02).into_dataset(); // 4 000 points
    let dc = kind.default_dc();
    println!("dataset: {} points (Range-like), dc = {dc}\n", data.len());

    let mut results: Vec<(String, Vec<usize>)> = Vec::new();
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "index", "build (ms)", "query (ms)", "memory (KiB)"
    );

    let mut report = |name: &str, index: &dyn DpcIndex, build_ms: f64| {
        let start = Instant::now();
        let (rho, deltas) = index.rho_delta(dc).expect("query failed");
        let query_ms = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<12} {:>14.2} {:>14.2} {:>14.1}",
            name,
            build_ms,
            query_ms,
            index.memory_bytes() as f64 / 1024.0
        );
        // Keep a fingerprint of the result to prove all indices agree.
        let fingerprint: Vec<usize> = rho.iter().map(|&r| r as usize).take(32).collect();
        let _ = deltas;
        results.push((name.to_string(), fingerprint));
    };

    macro_rules! timed_build {
        ($name:expr, $ctor:expr) => {{
            let start = Instant::now();
            let index = $ctor;
            let build_ms = start.elapsed().as_secs_f64() * 1e3;
            report($name, &index, build_ms);
        }};
    }

    timed_build!("list", ListIndex::build(&data));
    timed_build!("ch", ChIndex::build(&data, kind.default_bin_width()));
    timed_build!("quadtree", Quadtree::build(&data));
    timed_build!("rtree", RTree::build(&data));
    timed_build!("kdtree", KdTree::build(&data));
    timed_build!("grid", GridIndex::build(&data));
    timed_build!("naive", LeanDpc::build(&data));

    let first = &results[0].1;
    let all_agree = results.iter().all(|(_, f)| f == first);
    println!("\nall indices produced identical densities: {all_agree}");
    assert!(all_agree, "exact indices must agree bit-for-bit");
}
