//! Quickstart: cluster a synthetic dataset with Density Peak Clustering.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the S1 benchmark (15 Gaussian clusters), indexes it once with the
//! Cumulative Histogram Index, and then clusters it for a cut-off distance —
//! printing the decision graph's strongest centre candidates and the final
//! cluster sizes.

use density_peaks::prelude::*;

fn main() {
    // 1. Data: the S1 benchmark at 20% of its paper size (1 000 points).
    let data = density_peaks::datasets::generators::s1(42, 0.2).into_dataset();
    println!(
        "dataset: {} points, bounding box diagonal = {:.0}",
        data.len(),
        data.bbox_diameter()
    );

    // 2. Index: built once, reusable for any dc.
    let index = ChIndex::build(&data, 2_000.0);

    // 3. Cluster at a chosen dc. The decision graph ranks centre candidates
    //    by gamma = normalised rho * delta; we ask for the top 15.
    let dc = 30_000.0;
    let params = DpcParams::new(dc).with_centers(CenterSelection::TopKGamma { k: 15 });
    let run = DpcPipeline::new(params)
        .run(&index)
        .expect("clustering failed");

    println!("\ndecision graph: top centre candidates (rho, delta):");
    for (rank, &p) in run
        .decision_graph
        .gamma_ranking()
        .iter()
        .take(5)
        .enumerate()
    {
        println!(
            "  #{rank}: point {p} with rho = {}, delta = {:.0}",
            run.decision_graph.rho(p),
            run.decision_graph.delta(p)
        );
    }

    let mut sizes = run.clustering.sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "\nfound {} clusters with dc = {dc}",
        run.clustering.num_clusters()
    );
    println!("cluster sizes (largest first): {sizes:?}");
    println!(
        "query time: rho = {:.2} ms, delta = {:.2} ms",
        run.rho_time.as_secs_f64() * 1e3,
        run.delta_time.as_secs_f64() * 1e3
    );
}
