//! Streaming scenario: tracking activity hotspots over a *live* stream of
//! location check-ins with a sliding window.
//!
//! ```text
//! cargo run --release --example streaming_checkins
//! ```
//!
//! Where `checkin_hotspots` clusters one static snapshot for several `dc`
//! values, this example feeds the same kind of skewed check-in data through
//! the incremental engine of `dpc-stream`: check-ins arrive in batches, the
//! oldest expire, and the clustering is maintained — never recomputed from
//! scratch — with cluster births and deaths reported per epoch.

use density_peaks::datasets::generators::{checkins, CheckinConfig};
use density_peaks::prelude::*;
use density_peaks::stream::StreamParams;

fn main() {
    const WINDOW: usize = 2_000;
    const BATCH: usize = 250;
    const EPOCHS: usize = 12;
    let dc = 0.1;

    // One long, seeded check-in trace; the window slides across it.
    let trace = checkins(WINDOW + BATCH * EPOCHS, &CheckinConfig::gowalla(), 2026).into_dataset();
    let points = trace.points();
    println!(
        "check-in trace: {} events over a {:.0}°×{:.0}° region; window {WINDOW}, batch {BATCH}\n",
        trace.len(),
        trace.bounding_box().width(),
        trace.bounding_box().height()
    );

    // Seed the engine with the first window. The updatable grid gives O(1)
    // cell updates plus the ε-queries the maintenance needs.
    let seed = Dataset::new(points[..WINDOW].to_vec());
    // Check-in data is dominated by a few huge hotspots, which makes the
    // automatic γ-gap heuristic collapse everything into one cluster; track
    // the top-8 γ peaks instead so hotspot churn is visible.
    let params = StreamParams::new(dc)
        .with_dpc(DpcParams::new(dc).with_centers(CenterSelection::TopKGamma { k: 8 }));
    let mut engine =
        StreamingDpc::new(GridIndex::build(&seed), params).expect("seeding must succeed");
    println!(
        "seeded {} check-ins: {} hotspots\n",
        engine.len(),
        engine.clustering().num_clusters()
    );

    for chunk in points[WINDOW..].chunks(BATCH) {
        let (_, delta) = engine
            .advance(chunk, chunk.len())
            .expect("advance must succeed");
        println!("{}", delta.summary());
        for &h in &delta.births {
            if let Some(p) = engine.point_of(h) {
                println!("           new hotspot {h} near ({:.2}, {:.2})", p.x, p.y);
            }
        }
        for &h in &delta.deaths {
            println!("           hotspot {h} dissolved");
        }
    }

    let stats = engine.stats();
    println!(
        "\n{} updates across {} epochs ({} incremental, {} fallback); \
         mean affected union {:.1} points per epoch",
        stats.updates,
        stats.epochs,
        stats.incremental_epochs,
        stats.fallback_epochs,
        stats.affected_points as f64 / (stats.epochs as f64).max(1.0)
    );
    println!(
        "the window never rebuilt its index — every epoch ran one batched \
         repair over the union of its ε-neighbourhoods (see BENCH_stream.json \
         for per-epoch vs per-update throughput)."
    );
}
