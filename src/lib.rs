//! # density-peaks
//!
//! Index-based solutions for efficient **Density Peak Clustering** (DPC) —
//! a from-scratch Rust reproduction of *"Index-based Solutions for Efficient
//! Density Peak Clustering"* (Rasool, Zhou, Chen, Liu, Xu).
//!
//! This umbrella crate re-exports the whole workspace behind one dependency:
//!
//! * [`core`] — the DPC model: points, datasets, ρ/δ, decision graph,
//!   assignment, the [`DpcIndex`](core::DpcIndex) trait and the pipeline;
//! * [`baseline`] — the original O(n²) DPC algorithm (matrix, lean and
//!   parallel variants);
//! * [`list_index`] — the paper's List Index and Cumulative Histogram Index,
//!   with the approximate RN-List option;
//! * [`tree_index`] — Quadtree, STR R-tree, k-d tree and uniform grid with
//!   the paper's density/distance pruning;
//! * [`stream`] — the streaming engine: epoch-batched inserts/expiries with
//!   affected-union ρ/δ maintenance over any
//!   [`UpdatableIndex`](core::UpdatableIndex);
//! * [`datasets`] — seeded generators reproducing the paper's six evaluation
//!   datasets, plus CSV I/O;
//! * [`metrics`] — pair-counting Precision/Recall/F1, ARI, NMI and result
//!   tables.
//!
//! The most common entry points are re-exported at the top level.
//!
//! ## Quickstart
//!
//! ```
//! use density_peaks::prelude::*;
//!
//! // Three well-separated blobs.
//! let data = density_peaks::datasets::generators::s1(42, 0.02).into_dataset();
//!
//! // Build an index once, then cluster for any dc without re-indexing.
//! let index = ChIndex::build(&data, 2_000.0);
//! let params = DpcParams::new(30_000.0)
//!     .with_centers(CenterSelection::TopKGamma { k: 15 });
//! let clustering = cluster_with_index(&index, &params).unwrap();
//! assert_eq!(clustering.num_clusters(), 15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dpc_baseline as baseline;
pub use dpc_core as core;
pub use dpc_datasets as datasets;
pub use dpc_list_index as list_index;
pub use dpc_metrics as metrics;
pub use dpc_stream as stream;
pub use dpc_tree_index as tree_index;

/// The most commonly used items, re-exported for `use density_peaks::prelude::*`.
pub mod prelude {
    pub use dpc_baseline::{LeanDpc, MatrixDpc, ParallelDpc};
    pub use dpc_core::{
        cluster_with_index, estimate_dc, CenterSelection, Clustering, Dataset, DcEstimation,
        DpcIndex, DpcParams, DpcPipeline, Point, TieBreak, UpdatableIndex,
    };
    pub use dpc_datasets::{DatasetKind, DatasetSpec};
    pub use dpc_list_index::{ChIndex, KnnDpc, ListIndex};
    pub use dpc_metrics::{adjusted_rand_index, pair_counting_scores_for};
    pub use dpc_stream::{ClusterDelta, EpochPlan, StreamParams, StreamingDpc};
    pub use dpc_tree_index::{GridIndex, KdTree, Quadtree, RTree};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_end_to_end_path() {
        let data = crate::datasets::generators::two_moons(400, 0.05, 7).into_dataset();
        let index = RTree::build(&data);
        let params = DpcParams::new(0.25).with_centers(CenterSelection::TopKGamma { k: 2 });
        let clustering = cluster_with_index(&index, &params).unwrap();
        assert_eq!(clustering.num_clusters(), 2);
        assert_eq!(clustering.len(), 400);
    }
}
