//! Properties of the approximate RN-List solution (§3.3 of the paper).
//!
//! The approximation is one-sided and well characterised:
//!
//! * ρ is exact whenever `dc ≤ τ` and never over-counts otherwise;
//! * δ/µ are exact for every point whose dependent neighbour lies within `τ`;
//! * memory never grows when `τ` shrinks;
//! * with `τ` at least the bounding-box diameter the approximate index
//!   degenerates into the exact one.

use density_peaks::prelude::*;
use dpc_metrics::pair_counting_scores_for;
use proptest::prelude::*;

fn points_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 4..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn approximate_rho_is_exact_below_tau_and_never_overcounts(
        points in points_strategy(),
        dc in 0.5f64..30.0,
        tau in 0.5f64..200.0
    ) {
        let data = Dataset::from_coords(points);
        let exact = ListIndex::build(&data);
        let approx = ListIndex::build_approx(&data, tau);
        let rho_exact = exact.rho(dc).unwrap();
        let rho_approx = approx.rho(dc).unwrap();
        for p in 0..data.len() {
            prop_assert!(rho_approx[p] <= rho_exact[p], "over-count at {}", p);
            if dc <= tau {
                prop_assert_eq!(rho_approx[p], rho_exact[p], "mismatch at {} with dc <= tau", p);
            }
        }
    }

    #[test]
    fn approximate_delta_is_exact_for_points_with_near_dependent_neighbours(
        points in points_strategy(),
        dc in 0.5f64..30.0,
        tau in 1.0f64..100.0
    ) {
        let data = Dataset::from_coords(points);
        let exact = ListIndex::build(&data);
        let approx = ListIndex::build_approx(&data, tau);
        // Compare under the same densities (use the exact ones so the density
        // order is identical and only the neighbour truncation differs).
        let rho = exact.rho(dc.min(tau)).unwrap();
        let d_exact = exact.delta(dc.min(tau), &rho).unwrap();
        let d_approx = approx.delta(dc.min(tau), &rho).unwrap();
        for p in 0..data.len() {
            if let Some(q_exact) = d_exact.mu(p) {
                if d_exact.delta(p) < tau {
                    prop_assert_eq!(d_approx.mu(p), Some(q_exact), "mu mismatch at {}", p);
                    prop_assert!((d_approx.delta(p) - d_exact.delta(p)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn memory_never_grows_when_tau_shrinks(points in points_strategy()) {
        let data = Dataset::from_coords(points);
        let small = ListIndex::build_approx(&data, 5.0);
        let medium = ListIndex::build_approx(&data, 25.0);
        let large = ListIndex::build_approx(&data, 500.0);
        prop_assert!(small.lists().total_entries() <= medium.lists().total_entries());
        prop_assert!(medium.lists().total_entries() <= large.lists().total_entries());
        prop_assert!(small.memory_bytes() <= large.memory_bytes());
    }

    #[test]
    fn huge_tau_degenerates_to_the_exact_index(
        points in points_strategy(),
        dc in 0.5f64..30.0
    ) {
        let data = Dataset::from_coords(points);
        let tau = data.bbox_diameter() + 1.0;
        let exact = ListIndex::build(&data);
        let approx = ListIndex::build_approx(&data, tau);
        let (rho_e, delta_e) = exact.rho_delta(dc).unwrap();
        let (rho_a, delta_a) = approx.rho_delta(dc).unwrap();
        prop_assert_eq!(rho_a, rho_e);
        // Every stored list now contains every other point, so even the
        // global peak's delta matches (it is the max distance in both).
        for p in 0..data.len() {
            prop_assert_eq!(delta_a.mu(p), delta_e.mu(p));
            if delta_a.mu(p).is_some() {
                prop_assert!((delta_a.delta(p) - delta_e.delta(p)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn approximate_ch_and_list_agree_with_each_other(
        points in points_strategy(),
        dc in 0.5f64..30.0,
        tau in 1.0f64..100.0,
        w in 0.5f64..20.0
    ) {
        let data = Dataset::from_coords(points);
        let list = ListIndex::build_approx(&data, tau);
        let ch = ChIndex::build_approx(&data, w, tau);
        prop_assert_eq!(list.rho(dc).unwrap(), ch.rho(dc).unwrap());
    }
}

#[test]
fn quality_degrades_gracefully_then_collapses_as_tau_shrinks() {
    // The Figure 10 story on a controlled dataset: grid clusters, fixed dc.
    let data = DatasetKind::Birch.generate(5, 0.01).into_dataset(); // 1 000 points
    let dc = 100_000.0;
    let k = 50;
    let params = DpcParams::new(dc).with_centers(CenterSelection::TopKGamma { k });
    let reference = cluster_with_index(&ListIndex::build(&data), &params).unwrap();

    let f1_at = |tau: f64| {
        let approx = ListIndex::build_approx(&data, tau);
        let obtained = cluster_with_index(&approx, &params).unwrap();
        pair_counting_scores_for(&obtained, &reference).f1
    };

    let high = f1_at(250_000.0); // tau well above dc
    let low = f1_at(5_000.0); // tau far below dc
    assert!(
        high > 0.95,
        "tau >= dc must stay essentially exact, F1 = {high}"
    );
    assert!(
        low < high,
        "tiny tau must not beat a sufficient tau (low = {low}, high = {high})"
    );
}
