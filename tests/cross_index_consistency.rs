//! Property-based cross-index consistency: every *exact* index must produce
//! exactly the same ρ, δ and µ as the naive baseline, for arbitrary point
//! sets and arbitrary cut-off distances.
//!
//! This is the central correctness claim of the reproduction: the paper's
//! indices are pure accelerations, not approximations (Theorem 3).

use density_peaks::core::ExecPolicy;
use density_peaks::prelude::*;
use dpc_baseline::MatrixDpc;
use proptest::prelude::*;

/// Strategy: between 2 and 60 points with coordinates in [-100, 100].
fn points_strategy() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..60)
}

/// Strategy: a cut-off distance spanning tiny to "covers everything".
fn dc_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![0.01f64..1.0, 1.0f64..50.0, 50.0f64..400.0]
}

fn all_exact_indices(data: &Dataset) -> Vec<(&'static str, Box<dyn DpcIndex>)> {
    vec![
        ("list", Box::new(ListIndex::build(data))),
        ("ch", Box::new(ChIndex::build(data, 7.5))),
        ("ch-fine", Box::new(ChIndex::build(data, 0.5))),
        ("quadtree", Box::new(Quadtree::build(data))),
        ("rtree", Box::new(RTree::build(data))),
        ("kdtree", Box::new(KdTree::build(data))),
        ("grid", Box::new(GridIndex::build(data))),
        ("matrix", Box::new(MatrixDpc::build(data))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_exact_index_matches_the_baseline(points in points_strategy(), dc in dc_strategy()) {
        let data = Dataset::from_coords(points);
        let baseline = LeanDpc::build(&data);
        let (ref_rho, ref_delta) = baseline.rho_delta(dc).unwrap();

        for (name, index) in all_exact_indices(&data) {
            let (rho, delta) = index.rho_delta(dc).unwrap();
            prop_assert_eq!(&rho, &ref_rho, "rho mismatch for {}", name);
            prop_assert_eq!(&delta.mu, &ref_delta.mu, "mu mismatch for {}", name);
            for p in 0..data.len() {
                prop_assert!(
                    (delta.delta(p) - ref_delta.delta(p)).abs() < 1e-9,
                    "delta mismatch for {} at point {}", name, p
                );
            }
        }
    }

    #[test]
    fn parallel_queries_are_bit_identical_to_sequential_for_every_index(
        points in points_strategy(),
        dc in dc_strategy()
    ) {
        // The parallel query engine partitions work over threads but runs
        // exactly the same per-point code, so ρ, δ and µ must be
        // bit-identical to the sequential query for every index and any
        // thread count — including more threads than points (n is 2..60
        // here, so threads = 7 regularly exceeds n).
        let data = Dataset::from_coords(points);
        let mut indexes = all_exact_indices(&data);
        indexes.push(("lean", Box::new(LeanDpc::build(&data))));
        indexes.push(("parallel", Box::new(ParallelDpc::build_with_threads(&data, 4))));
        for (name, index) in indexes {
            let (seq_rho, seq_delta) = index.rho_delta(dc).unwrap();
            for threads in [1usize, 2, 3, 7] {
                let policy = ExecPolicy::Threads(threads);
                let rho = index.rho_with_policy(dc, policy).unwrap();
                let delta = index.delta_with_policy(dc, &rho, policy).unwrap();
                prop_assert_eq!(&rho, &seq_rho, "rho differs for {} at {} threads", name, threads);
                prop_assert_eq!(
                    &delta.delta, &seq_delta.delta,
                    "delta differs for {} at {} threads", name, threads
                );
                prop_assert_eq!(
                    &delta.mu, &seq_delta.mu,
                    "mu differs for {} at {} threads", name, threads
                );
            }
        }
    }

    #[test]
    fn rho_is_symmetric_in_pair_membership(points in points_strategy(), dc in dc_strategy()) {
        // The sum of all densities equals twice the number of close pairs —
        // an invariant that catches double counting or self counting.
        let data = Dataset::from_coords(points);
        let rho = ListIndex::build(&data).rho(dc).unwrap();
        let mut close_pairs = 0u64;
        for i in 0..data.len() {
            for j in (i + 1)..data.len() {
                if data.distance(i, j) < dc {
                    close_pairs += 1;
                }
            }
        }
        let total: u64 = rho.iter().map(|&r| r as u64).sum();
        prop_assert_eq!(total, 2 * close_pairs);
    }

    #[test]
    fn delta_points_to_a_denser_point_at_that_exact_distance(
        points in points_strategy(),
        dc in dc_strategy()
    ) {
        let data = Dataset::from_coords(points);
        let index = RTree::build(&data);
        let (rho, delta) = index.rho_delta(dc).unwrap();
        let order = density_peaks::core::DensityOrder::new(&rho);
        delta.validate(&order).unwrap();
        for p in 0..data.len() {
            if let Some(q) = delta.mu(p) {
                prop_assert!((delta.delta(p) - data.distance(p, q)).abs() < 1e-9);
                // No denser point may be strictly closer than mu.
                for r in 0..data.len() {
                    if r != p && order.is_denser(r, p) {
                        prop_assert!(data.distance(p, r) >= delta.delta(p) - 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn clusterings_from_different_indices_are_identical(
        points in points_strategy(),
        dc in 1.0f64..60.0,
        k in 1usize..4
    ) {
        let data = Dataset::from_coords(points);
        let k = k.min(data.len());
        let params = DpcParams::new(dc).with_centers(CenterSelection::TopKGamma { k });
        let reference = cluster_with_index(&LeanDpc::build(&data), &params).unwrap();
        let from_ch = cluster_with_index(&ChIndex::build(&data, 3.0), &params).unwrap();
        let from_quadtree = cluster_with_index(&Quadtree::build(&data), &params).unwrap();
        let from_rtree = cluster_with_index(&RTree::build(&data), &params).unwrap();
        prop_assert_eq!(reference.labels(), from_ch.labels());
        prop_assert_eq!(reference.labels(), from_quadtree.labels());
        prop_assert_eq!(reference.labels(), from_rtree.labels());
        prop_assert_eq!(reference.centers(), from_rtree.centers());
    }
}

#[test]
fn duplicate_and_collinear_points_are_handled_by_every_index() {
    // Degenerate layouts that stress tie-breaking and zero-area boxes.
    let layouts: Vec<Vec<(f64, f64)>> = vec![
        vec![(1.0, 1.0); 12],                       // all identical
        (0..20).map(|i| (i as f64, 0.0)).collect(), // collinear on x
        (0..20).map(|i| (0.0, i as f64)).collect(), // collinear on y
        vec![(0.0, 0.0), (0.0, 0.0), (1.0, 1.0), (1.0, 1.0), (2.0, 2.0)], // duplicates
    ];
    for points in layouts {
        let data = Dataset::from_coords(points);
        let baseline = LeanDpc::build(&data);
        for dc in [0.5, 1.5, 100.0] {
            let (ref_rho, ref_delta) = baseline.rho_delta(dc).unwrap();
            for (name, index) in all_exact_indices(&data) {
                let (rho, delta) = index.rho_delta(dc).unwrap();
                assert_eq!(rho, ref_rho, "{name} at dc = {dc}");
                assert_eq!(delta.mu, ref_delta.mu, "{name} at dc = {dc}");
            }
        }
    }
}
