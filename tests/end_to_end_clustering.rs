//! End-to-end clustering quality on the synthetic benchmark generators:
//! DPC through any index must recover the generating components of well
//! separated data, and all indices must agree on the full pipeline output.

use density_peaks::datasets::generators::{s1, two_moons};
use density_peaks::prelude::*;
use dpc_core::ClusterId;
use dpc_metrics::{adjusted_rand_index, normalized_mutual_information};

fn as_options(labels: &[ClusterId]) -> Vec<Option<ClusterId>> {
    labels.iter().map(|&l| Some(l)).collect()
}

#[test]
fn dpc_recovers_the_15_clusters_of_s1() {
    let labelled = s1(2024, 0.2); // 1 000 points, 15 clusters
    let data = labelled.dataset.clone();
    let index = ChIndex::build(&data, 2_000.0);
    let params = DpcParams::new(30_000.0).with_centers(CenterSelection::TopKGamma { k: 15 });
    let clustering = cluster_with_index(&index, &params).unwrap();

    assert_eq!(clustering.num_clusters(), 15);
    let truth: Vec<Option<ClusterId>> = labelled.labels.clone();
    let obtained = as_options(clustering.labels());
    let ari = adjusted_rand_index(&obtained, &truth);
    let nmi = normalized_mutual_information(&obtained, &truth);
    assert!(ari > 0.9, "ARI against the generating mixture = {ari}");
    assert!(nmi > 0.9, "NMI against the generating mixture = {nmi}");
}

#[test]
fn gamma_gap_auto_selection_finds_the_grid_clusters() {
    // A 3x3 grid of well separated clusters; the automatic gamma-gap rule
    // must find exactly 9 without being told k.
    let data = density_peaks::datasets::generators::grid_clusters(
        900,
        3,
        3,
        density_peaks::core::BoundingBox::new(0.0, 0.0, 900.0, 900.0),
        0.08,
        7,
    )
    .into_dataset();
    let index = RTree::build(&data);
    let params = DpcParams::new(40.0).with_centers(CenterSelection::GammaGap { max_centers: 30 });
    let clustering = cluster_with_index(&index, &params).unwrap();
    assert_eq!(clustering.num_clusters(), 9);
    let sizes = clustering.sizes();
    assert!(
        sizes.iter().all(|&s| s > 50),
        "balanced clusters expected, got {sizes:?}"
    );
}

#[test]
fn two_moons_shows_the_known_limits_of_vanilla_dpc() {
    // Two interleaving half-circles have no density peaks along the
    // manifold, so vanilla DPC (the algorithm the paper indexes) only
    // partially separates them — a known limitation that the manifold
    // variants cited in the paper's related work address. The test pins the
    // behaviour: two non-trivial clusters, agreement clearly better than
    // chance, but far from perfect.
    let labelled = two_moons(600, 0.04, 99);
    let data = labelled.dataset.clone();
    let index = KdTree::build(&data);
    let params = DpcParams::new(0.25).with_centers(CenterSelection::TopKGamma { k: 2 });
    let clustering = cluster_with_index(&index, &params).unwrap();
    assert_eq!(clustering.num_clusters(), 2);
    let sizes = clustering.sizes();
    assert!(sizes.iter().all(|&s| s > 60), "degenerate split: {sizes:?}");
    let ari = adjusted_rand_index(&as_options(clustering.labels()), &labelled.labels);
    assert!(ari > 0.15, "moons ARI = {ari} (should beat chance)");
    assert!(
        ari < 0.99,
        "vanilla DPC is not expected to solve moons perfectly"
    );
}

#[test]
fn the_full_pipeline_is_identical_across_indices_on_a_real_generator() {
    let data = DatasetKind::Query.generate(31, 0.02).into_dataset(); // 1 000 points
    let params = DpcParams::new(0.02).with_centers(CenterSelection::TopKGamma { k: 6 });

    let reference = cluster_with_index(&LeanDpc::build(&data), &params).unwrap();
    let list = cluster_with_index(&ListIndex::build(&data), &params).unwrap();
    let ch = cluster_with_index(&ChIndex::build(&data, 0.0006), &params).unwrap();
    let quadtree = cluster_with_index(&Quadtree::build(&data), &params).unwrap();
    let rtree = cluster_with_index(&RTree::build(&data), &params).unwrap();
    let kdtree = cluster_with_index(&KdTree::build(&data), &params).unwrap();
    let grid = cluster_with_index(&GridIndex::build(&data), &params).unwrap();

    for (name, clustering) in [
        ("list", &list),
        ("ch", &ch),
        ("quadtree", &quadtree),
        ("rtree", &rtree),
        ("kdtree", &kdtree),
        ("grid", &grid),
    ] {
        assert_eq!(
            clustering.centers(),
            reference.centers(),
            "{name} centres differ"
        );
        assert_eq!(
            clustering.labels(),
            reference.labels(),
            "{name} labels differ"
        );
    }
}

#[test]
fn halo_points_appear_only_between_clusters() {
    // The Query generator mixes dense blobs with 15% uniform background
    // noise, so cluster borders overlap and the halo is non-empty.
    let data = DatasetKind::Query.generate(8, 0.04).into_dataset(); // 2 000 points
    let index = RTree::build(&data);
    let params = DpcParams::new(0.05)
        .with_centers(CenterSelection::TopKGamma { k: 6 })
        .with_halo(true);
    let run = DpcPipeline::new(params).run(&index).unwrap();
    let halo = run.clustering.halo_count();
    // Some borders exist, but the vast majority of points are core.
    assert!(halo > 0, "expected some halo points");
    assert!(
        halo < data.len() / 2,
        "halo dominates: {halo} of {}",
        data.len()
    );
    // Cluster centres are the densest points of their clusters and are never halo.
    for &c in run.clustering.centers() {
        assert!(!run.clustering.is_halo(c));
    }
}

#[test]
fn reclustering_with_a_different_dc_reuses_the_same_index() {
    // The motivating workflow of the paper: one index, many dc values.
    let data = DatasetKind::Brightkite.generate(3, 0.005).into_dataset(); // ~2 000 points
    let index = RTree::build(&data);
    let mut cluster_counts = Vec::new();
    for dc in [0.05, 0.3, 2.0] {
        let params = DpcParams::new(dc).with_centers(CenterSelection::GammaGap { max_centers: 50 });
        let clustering = cluster_with_index(&index, &params).unwrap();
        assert_eq!(clustering.len(), data.len());
        cluster_counts.push(clustering.num_clusters());
    }
    // The index answered all three without rebuilding; the clusterings differ.
    assert!(
        cluster_counts.windows(2).any(|w| w[0] != w[1]),
        "{cluster_counts:?}"
    );
}
