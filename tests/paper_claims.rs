//! Shape-level checks of the paper's qualitative claims, small enough to run
//! in the normal test suite. The full experiment harness (`dpc-bench`)
//! regenerates the actual tables and figures; these tests pin down the
//! *relationships* the paper reports so a regression in any index
//! immediately shows up.

use density_peaks::prelude::*;
use dpc_list_index::NeighborLists;
use dpc_tree_index::DeltaQueryConfig;
use std::time::Duration;

fn median_query_time(index: &dyn DpcIndex, dc: f64) -> Duration {
    dpc_metrics::measure_median(3, || index.rho_delta(dc).unwrap()).0
}

/// §5.2 / Table 3: list-based indices need orders of magnitude more memory
/// than tree-based indices; the CH Index adds a little on top of the List
/// Index; the R-tree is leaner than the quadtree.
#[test]
fn memory_ordering_matches_table3() {
    let kind = DatasetKind::Query;
    let data = kind.generate(1, 0.04).into_dataset(); // 2 000 points
    let list = ListIndex::build(&data);
    let ch = ChIndex::build(&data, kind.default_bin_width());
    let quadtree = Quadtree::build(&data);
    let rtree = RTree::build(&data);

    assert!(list.memory_bytes() > 20 * quadtree.memory_bytes());
    assert!(list.memory_bytes() > 20 * rtree.memory_bytes());
    assert!(ch.memory_bytes() > list.memory_bytes());
    assert!(ch.memory_bytes() < list.memory_bytes() * 2);
}

/// §5.2 / Table 4: tree construction is far cheaper than list construction,
/// and building the CH histograms on top of existing lists is much cheaper
/// than building the lists themselves.
#[test]
fn construction_cost_ordering_matches_table4() {
    let kind = DatasetKind::Range;
    let data = kind.generate(2, 0.01).into_dataset(); // 2 000 points

    let (list_time, lists) = dpc_metrics::measure_once(|| NeighborLists::build(&data, None));
    let (hist_time, _) = dpc_metrics::measure_once(|| {
        ChIndex::from_lists(&data, lists.clone(), kind.default_bin_width())
    });
    let (rtree_time, _) = dpc_metrics::measure_once(|| RTree::build(&data));
    let (quadtree_time, _) = dpc_metrics::measure_once(|| Quadtree::build(&data));

    assert!(
        rtree_time < list_time,
        "rtree {rtree_time:?} vs list {list_time:?}"
    );
    assert!(
        quadtree_time < list_time,
        "quadtree {quadtree_time:?} vs list {list_time:?}"
    );
    assert!(
        hist_time < list_time,
        "histograms {hist_time:?} vs lists {list_time:?}"
    );
}

/// §5.1 / Figure 5: on a medium dataset the index-based queries beat the
/// naive O(n²) baseline comfortably.
#[test]
fn indexed_queries_beat_the_naive_baseline() {
    let kind = DatasetKind::Query;
    let data = kind.generate(3, 0.06).into_dataset(); // 3 000 points
    let dc = kind.default_dc();

    let naive = LeanDpc::build(&data);
    let ch = ChIndex::build(&data, kind.default_bin_width());
    let rtree = RTree::build(&data);

    let t_naive = median_query_time(&naive, dc);
    let t_ch = median_query_time(&ch, dc);
    let t_rtree = median_query_time(&rtree, dc);

    assert!(
        t_ch < t_naive,
        "CH ({t_ch:?}) must beat the naive baseline ({t_naive:?})"
    );
    assert!(
        t_rtree < t_naive,
        "R-tree ({t_rtree:?}) must beat the naive baseline ({t_naive:?})"
    );
}

/// §3.1 Theorem 1: the number of list entries probed by the δ-query is a
/// small fraction of n² on clustered data (the paper quotes ~1–3% of the
/// index probed for Range/Birch).
#[test]
fn delta_probe_fraction_is_small_on_clustered_data() {
    let data = DatasetKind::Birch.generate(4, 0.02).into_dataset(); // 2 000 points
    let index = ListIndex::build(&data);
    let dc = 100_000.0;
    let rho = index.rho(dc).unwrap();
    let (_, probes) = index.delta_with_probes(dc, &rho).unwrap();
    let total_entries = (data.len() * (data.len() - 1)) as u64;
    let fraction = probes as f64 / total_entries as f64;
    assert!(
        fraction < 0.05,
        "probed {:.2}% of the index",
        fraction * 100.0
    );
}

/// §4.1 Lemmas 1–2: pruning must cut the work of the tree δ-query
/// substantially without changing its result.
#[test]
fn pruning_cuts_tree_query_work_substantially() {
    let data = DatasetKind::Gowalla.generate(5, 0.002).into_dataset(); // ~2 500 points
    let dc = DatasetKind::Gowalla.default_dc();
    let tree = RTree::build(&data);
    let rho = DpcIndex::rho(&tree, dc).unwrap();
    let (with, stats_with) = tree
        .delta_with_config(dc, &rho, &DeltaQueryConfig::default())
        .unwrap();
    let (without, stats_without) = tree
        .delta_with_config(dc, &rho, &DeltaQueryConfig::no_pruning())
        .unwrap();
    assert_eq!(with.mu, without.mu);
    assert!(
        stats_with.points_scanned * 2 < stats_without.points_scanned,
        "pruning saved too little: {} vs {}",
        stats_with.points_scanned,
        stats_without.points_scanned
    );
}

/// §5.3.1 / Figure 6: list-based query time is essentially flat in dc, while
/// the tree-based rho-query gets more expensive as dc grows (until the
/// fully-contained shortcut kicks in at the very largest dc).
#[test]
fn tree_rho_work_grows_with_dc_then_collapses_at_the_largest_dc() {
    let data = DatasetKind::Range.generate(6, 0.01).into_dataset(); // 2 000 points
    let tree = Quadtree::build(&data);
    let (_, small) = tree.rho_with_stats(300.0).unwrap();
    let (_, medium) = tree.rho_with_stats(5_000.0).unwrap();
    let (_, huge) = tree.rho_with_stats(data.bbox_diameter() * 1.01).unwrap();
    assert!(
        medium.points_scanned > small.points_scanned,
        "medium dc must scan more points than small dc"
    );
    assert_eq!(
        huge.points_scanned, 0,
        "largest dc must be answered from node counts alone"
    );
}

/// §3.2 / Figure 7: a finer bin width makes the CH ρ-query cheaper (it
/// searches a smaller list section), at the cost of more histogram memory
/// (Figure 9a).
#[test]
fn finer_bins_trade_memory_for_query_work() {
    let kind = DatasetKind::Birch;
    let data = kind.generate(7, 0.02).into_dataset(); // 2 000 points
    let fine = ChIndex::build(&data, 2_000.0);
    let coarse = ChIndex::build(&data, 200_000.0);
    assert!(fine.histogram_memory_bytes() > coarse.histogram_memory_bytes());
    // Work proxy: the section searched per object is bounded by the bin
    // population; compare total bins instead of wall-clock to stay
    // deterministic.
    assert!(fine.total_bins() > coarse.total_bins());
    // And the results are identical regardless of w.
    let dc = 150_000.0;
    assert_eq!(fine.rho(dc).unwrap(), coarse.rho(dc).unwrap());
}

/// §5.4 / Figures 8–9b: smaller τ means a smaller and faster approximate
/// index.
#[test]
fn smaller_tau_means_smaller_and_faster_approximate_index() {
    let kind = DatasetKind::Brightkite;
    let data = kind.generate(8, 0.008).into_dataset(); // ~3 200 points
    let dc = 0.5;
    let small = ListIndex::build_approx(&data, 1.0);
    let large = ListIndex::build_approx(&data, 10.0);
    assert!(small.memory_bytes() < large.memory_bytes());
    let t_small = median_query_time(&small, dc);
    let t_large = median_query_time(&large, dc);
    // Allow generous slack; the claim is only that the small index is not slower.
    assert!(
        t_small <= t_large + Duration::from_millis(50),
        "small tau {t_small:?} vs large tau {t_large:?}"
    );
}
