//! Umbrella-crate smoke test: every index re-exported through
//! `density_peaks::prelude` must produce the *same* clustering as the naive
//! reference implementation on a seeded blob dataset. This is the one-glance
//! check that the whole workspace is wired together correctly — the prelude
//! re-exports resolve, every `DpcIndex` implementor agrees on the seam, and
//! the end-to-end pipeline runs for each of them.

use density_peaks::core::naive_reference::NaiveReferenceIndex;
use density_peaks::prelude::*;

#[test]
fn every_prelude_index_matches_the_naive_reference() {
    // A seeded 500-point blob dataset (S1 at a tenth of its paper size).
    let data = density_peaks::datasets::generators::s1(11, 0.1).into_dataset();
    assert_eq!(data.len(), 500);

    let kind = DatasetKind::S1;
    let params =
        DpcParams::new(kind.default_dc()).with_centers(CenterSelection::TopKGamma { k: 15 });

    let reference = NaiveReferenceIndex::build(&data);
    let expected = cluster_with_index(&reference, &params).unwrap();
    assert_eq!(expected.num_clusters(), 15);
    assert_eq!(expected.len(), data.len());

    let indexes: Vec<(&str, Box<dyn DpcIndex>)> = vec![
        ("list", Box::new(ListIndex::build(&data))),
        (
            "ch",
            Box::new(ChIndex::build(&data, kind.default_bin_width())),
        ),
        ("quadtree", Box::new(Quadtree::build(&data))),
        ("rtree", Box::new(RTree::build(&data))),
        ("kdtree", Box::new(KdTree::build(&data))),
        ("grid", Box::new(GridIndex::build(&data))),
        ("lean", Box::new(LeanDpc::build(&data))),
        ("matrix", Box::new(MatrixDpc::build(&data))),
        (
            "parallel",
            Box::new(ParallelDpc::build_with_threads(&data, 4)),
        ),
    ];

    for (name, index) in &indexes {
        let clustering = cluster_with_index(index.as_ref(), &params).unwrap();
        assert_eq!(
            clustering.labels(),
            expected.labels(),
            "index {name} disagrees with the naive reference"
        );
    }
}
