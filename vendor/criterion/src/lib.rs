//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal, API-compatible benchmark harness instead
//! of the real `criterion` crate. It supports benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical sampling it runs each benchmark for a
//! small fixed number of timed iterations and prints the minimum and median
//! wall-clock time — enough to compare indexes by eye and to keep
//! `cargo bench` (and `cargo bench --no-run`) working offline. Swap the path
//! dependency for the real crate once a registry is reachable.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark inside a group: a function name plus a
/// parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id like `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }

    /// An id with only a parameter component.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        if self.function_name.is_empty() {
            self.parameter.clone()
        } else if self.parameter.is_empty() {
            self.function_name.clone()
        } else {
            format!("{}/{}", self.function_name, self.parameter)
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iterations: u32,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations (one untimed
    /// warm-up, then `iterations` timed runs).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.iterations as usize);
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:50} (no samples)");
            return;
        }
        self.samples.sort();
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        println!("{label:50} min {min:>12.2?}   median {median:>12.2?}");
    }
}

/// The top-level harness handle passed to `criterion_group!` functions.
pub struct Criterion {
    iterations: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iterations: 5 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let label = name.to_string();
        run_one(self.iterations, &label, f);
        self
    }
}

/// A named group of benchmarks; sampling knobs are accepted for API
/// compatibility (the shim always runs a fixed iteration count).
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion API compatibility; ignored by the shim.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for criterion API compatibility; ignored by the shim.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for criterion API compatibility; ignored by the shim.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for criterion API compatibility; ignored by the shim.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F, N>(&mut self, id: N, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
        N: IntoBenchmarkId,
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().render());
        run_one(self.criterion.iterations, &label, f);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I, F, N>(&mut self, id: N, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
        N: IntoBenchmarkId,
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().render());
        run_one(self.criterion.iterations, &label, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(iterations: u32, label: &str, mut f: F) {
    let mut bencher = Bencher {
        iterations,
        samples: Vec::new(),
    };
    f(&mut bencher);
    bencher.report(label);
}

/// Conversion into a [`BenchmarkId`], so group methods accept both `&str`
/// names and explicit ids.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::new(self, "")
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::new(self, "")
    }
}

/// Throughput annotation; accepted and ignored by the shim.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of bytes processed per iteration.
    Bytes(u64),
    /// Number of elements processed per iteration.
    Elements(u64),
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running the listed groups (ignores harness CLI args
/// such as `--bench` that `cargo bench` passes).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_benchmark_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        {
            let mut group = c.benchmark_group("shim");
            group.sample_size(10);
            group.warm_up_time(Duration::from_millis(1));
            group.measurement_time(Duration::from_millis(1));
            group.bench_function("counting", |b| b.iter(|| runs += 1));
            group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            group.finish();
        }
        // one warm-up + `iterations` timed runs
        assert_eq!(runs, 6);
    }
}
