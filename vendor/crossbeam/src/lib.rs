//! Offline shim for the subset of `crossbeam` this workspace uses.
//!
//! The build environment has no network access to crates.io, so instead of
//! the real `crossbeam` crate the workspace vendors this tiny API-compatible
//! layer over `std::thread::scope` (stable since Rust 1.63). Only
//! `crossbeam::thread::scope` / `Scope::spawn` are provided because that is
//! the only surface the workspace touches; swap the `[patch]`-free path
//! dependency for the real crate once the registry is reachable.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` calling convention.

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope: `Err` carries the payload of a panicking child
    /// thread, exactly like `crossbeam::thread::scope`.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle; closures passed to [`Scope::spawn`] receive a fresh
    /// `&Scope` so nested spawns work like in crossbeam.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a `&Scope` (crossbeam
        /// convention); every call site in this workspace ignores it.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = Scope { inner: self.inner };
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Creates a scope whose spawned threads are all joined before it
    /// returns. A panic in any child thread surfaces as `Err`, matching the
    /// crossbeam contract (`scope(...).expect(...)` at the call sites).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn spawned_threads_fill_disjoint_chunks() {
            let mut data = vec![0u32; 10];
            super::scope(|scope| {
                for (i, chunk) in data.chunks_mut(3).enumerate() {
                    scope.spawn(move |_| chunk.iter_mut().for_each(|v| *v = i as u32));
                }
            })
            .unwrap();
            assert_eq!(data, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
        }

        #[test]
        fn child_panic_becomes_err() {
            let r = super::scope(|scope| {
                scope.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }

        #[test]
        fn nested_spawn_works() {
            let r = super::scope(|scope| {
                scope
                    .spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(r, 42);
        }
    }
}
