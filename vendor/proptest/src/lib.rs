//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this small API-compatible property-testing runner
//! instead of the real `proptest` crate. It supports exactly the surface the
//! workspace's `tests/properties.rs` suites touch:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * [`Strategy`] for numeric ranges (`f64`, `u32`, `u64`, `usize`), tuples,
//!   [`Just`], [`any`]`::<bool>()`, `prop::collection::vec`, `prop_map` and
//!   weighted [`prop_oneof!`] unions,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from real proptest, by design: inputs are drawn from a
//! deterministic per-test RNG (seeded from the test's module path), and
//! failing cases are reported with their case number but **not shrunk**.
//! Swap the path dependency for the real crate once a registry is reachable.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the test as a whole fails.
    Fail(String),
    /// The input was rejected (unused by this workspace, kept for parity).
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Per-case result type produced by the body of a `proptest!` test.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 generator driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from an arbitrary string (the test's path), so
    /// every run of a given test sees the same input sequence.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of random values of one type. The shim's strategies sample
/// directly; there is no shrinking tree.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps every sampled value through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty float range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types usable with [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Unconstrained values of `T` (`any::<bool>()` and friends).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Weighted union of strategies, built by [`prop_oneof!`].
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union; panics if empty or all weights are zero.
    pub fn new(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = variants.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Union {
            variants,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total_weight;
        for (w, s) in &self.variants {
            let w = u64::from(*w);
            if pick < w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total_weight")
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector whose length is uniform in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror of `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// The commonly imported surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Fails the current case unless the two expressions compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}\n  both: `{:?}`",
            format!($($fmt)*),
            left
        );
    }};
}

/// Weighted (or unweighted) choice between strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategies = ($($strat,)+);
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                let ($($arg,)+) = $crate::Strategy::sample(&strategies, &mut rng);
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {}/{} failed: {}\n(deterministic seed; rerun \
                             reproduces the same inputs)",
                            case + 1,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = crate::Strategy::sample(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = crate::Strategy::sample(&(-2.0f64..3.5), &mut rng);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn oneof_respects_zero_weightless_choice() {
        let s = prop_oneof![3 => (0usize..6).prop_map(Some), 1 => Just(None)];
        let mut rng = crate::TestRng::deterministic("oneof");
        let mut nones = 0;
        for _ in 0..400 {
            if crate::Strategy::sample(&s, &mut rng).is_none() {
                nones += 1;
            }
        }
        assert!(nones > 40 && nones < 200, "nones = {nones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_respect_the_size_range(v in prop::collection::vec(0u32..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_any_compose(
            (x, y) in (-1.0f64..1.0, 0u64..10),
            flag in any::<bool>()
        ) {
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert!(y < 10);
            if flag {
                return Ok(());
            }
            prop_assert_ne!(x, 2.0);
        }
    }
}
